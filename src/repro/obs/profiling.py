"""Deterministic cost-attribution profiling and node-scoped registries.

Two related tools for answering "where does round time actually go?"
without sacrificing the byte-stability contract every other obs surface
keeps:

* :class:`CostProfiler` decomposes a run into the named service
  **phases** of :data:`PHASES` — the §3.4 round loop's admission scan
  and deadline bookkeeping, the drive's positioning (seek + rotation)
  and media transfer, cache lookups, fault-recovery overhead, and
  per-stream span finalize — accumulating *operation counts* and
  *modeled-time costs* per phase, per stream, per drive, and per
  cluster node.  Costs are **simulated seconds only**: the profiler
  never reads the wall clock, so two runs at the same seed serialize
  byte-identically (the ``repro profile --json`` acceptance bar).
* :class:`ScopedObservability` is the node-scoped view of one shared
  :class:`~repro.obs.Observability` that the cluster hands each
  :class:`~repro.cluster.ClusterNode` instead of flat sharing: every
  counter/gauge/histogram/timer write lands in **both** the shared
  registry (so cluster-wide totals, SLOs, and goldens are unchanged)
  and a private per-node registry (so hot spots are attributable).
  :func:`merge_snapshots` folds the per-node views back into one
  byte-stable cluster snapshot whose counters equal the legacy
  flat-shared values exactly.

Phase taxonomy (see docs/OBSERVABILITY.md for the full semantics):

========================  ====================================================
``admission_scan``        per-round pending-admission pops + active-list
                          compaction scans (ops; zero modeled cost)
``deadline_ordering``     consumption-cursor / buffer-occupancy queries that
                          order deliveries against playback deadlines (ops;
                          zero modeled cost)
``seek``                  drive positioning: seek + rotational latency
                          (modeled seconds per access)
``transfer``              media transfer seconds per access
``cache_lookup``          block-cache residency probes (ops; a hit's memory
                          copy is below the model's time granularity)
``fault_recovery``        modeled delay attributable to injected faults:
                          doomed attempts and retry backoff windows (this
                          *overlaps* the seek/transfer charged to the failed
                          attempts — it is attribution, not conservation)
``span_finalize``         per-stream post-run scoring work: deliveries
                          folded into timeline/slack/span records (ops)
========================  ====================================================
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ParameterError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "PHASES",
    "CostProfiler",
    "ScopedObservability",
    "ScopedRegistry",
    "merge_snapshots",
]

#: The fixed phase taxonomy a service round decomposes into.
PHASES: Tuple[str, ...] = (
    "admission_scan",
    "deadline_ordering",
    "seek",
    "transfer",
    "cache_lookup",
    "fault_recovery",
    "span_finalize",
)


class _PhaseStat:
    """Accumulated operations + modeled cost for one attribution key."""

    __slots__ = ("ops", "cost")

    def __init__(self) -> None:
        self.ops = 0
        self.cost = 0.0

    def add(self, cost: float, ops: int) -> None:
        self.ops += ops
        self.cost += cost

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return {"ops": self.ops, "cost_s": self.cost}


class CostProfiler:
    """Deterministic per-phase cost accumulator.

    Parameters
    ----------
    enabled:
        When False every ``record`` is a no-op (call sites additionally
        guard on ``profiler is None``, the default).
    checkpoint_limit:
        Maximum retained per-round checkpoints for the Perfetto counter
        tracks.  When the limit fills, every other checkpoint is dropped
        and the sampling stride doubles — deterministic decimation, so
        the series stays bounded on million-round runs.
    top_streams:
        How many per-stream rows :meth:`summary_dict` retains (ranked
        by cost, then ops, then id — fully deterministic).
    """

    def __init__(
        self,
        enabled: bool = True,
        checkpoint_limit: int = 256,
        top_streams: int = 8,
    ):
        if checkpoint_limit < 2:
            raise ParameterError(
                f"checkpoint_limit must be >= 2, got {checkpoint_limit}"
            )
        if top_streams < 1:
            raise ParameterError(
                f"top_streams must be >= 1, got {top_streams}"
            )
        self.enabled = enabled
        self.checkpoint_limit = checkpoint_limit
        self.top_streams = top_streams
        self._phases: Dict[str, _PhaseStat] = {
            phase: _PhaseStat() for phase in PHASES
        }
        self._streams: Dict[str, _PhaseStat] = {}
        self._drives: Dict[str, Dict[str, _PhaseStat]] = {}
        self._nodes: Dict[str, Dict[str, _PhaseStat]] = {}
        self._scoped: Dict[str, "_ScopedProfiler"] = {}
        #: (simulated time, per-PHASES cumulative cost tuple).
        self._checkpoints: List[Tuple[float, Tuple[float, ...]]] = []
        self._checkpoint_stride = 1
        self._checkpoint_calls = 0

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        phase: str,
        cost: float = 0.0,
        ops: int = 1,
        drive: Optional[str] = None,
        node: Optional[str] = None,
    ) -> None:
        """Charge *ops* operations and *cost* modeled seconds to *phase*.

        *drive* and *node* additionally attribute the charge to a drive
        label / cluster node.  Unknown phases are a
        :class:`~repro.errors.ParameterError` — the taxonomy is closed
        so downstream rankings are comparable across runs.
        """
        if not self.enabled:
            return
        stat = self._phases.get(phase)
        if stat is None:
            raise ParameterError(
                f"unknown profile phase {phase!r}; known: "
                f"{', '.join(PHASES)}"
            )
        stat.ops += ops
        stat.cost += cost
        if drive is not None:
            per_drive = self._drives.get(drive)
            if per_drive is None:
                per_drive = self._drives[drive] = {}
            drive_stat = per_drive.get(phase)
            if drive_stat is None:
                drive_stat = per_drive[phase] = _PhaseStat()
            drive_stat.add(cost, ops)
        if node is not None:
            per_node = self._nodes.get(node)
            if per_node is None:
                per_node = self._nodes[node] = {}
            node_stat = per_node.get(phase)
            if node_stat is None:
                node_stat = per_node[phase] = _PhaseStat()
            node_stat.add(cost, ops)

    def attribute_stream(
        self, stream_id: str, cost: float = 0.0, ops: int = 1
    ) -> None:
        """Charge *cost* modeled seconds of service work to one stream."""
        if not self.enabled:
            return
        stat = self._streams.get(stream_id)
        if stat is None:
            stat = self._streams[stream_id] = _PhaseStat()
        stat.add(cost, ops)

    def checkpoint(self, time: float) -> None:
        """Sample the cumulative per-phase costs at simulated *time*.

        The service loop calls this once per round; decimation keeps the
        retained series under ``checkpoint_limit`` samples regardless of
        round count, and which rounds survive is a pure function of the
        call sequence (no randomness, no wall clock).
        """
        if not self.enabled:
            return
        self._checkpoint_calls += 1
        if self._checkpoint_calls % self._checkpoint_stride:
            return
        self._checkpoints.append((
            time,
            tuple(self._phases[phase].cost for phase in PHASES),
        ))
        if len(self._checkpoints) >= self.checkpoint_limit:
            self._checkpoints = self._checkpoints[::2]
            self._checkpoint_stride *= 2

    def scoped(self, node_id: str) -> "_ScopedProfiler":
        """A view whose records carry ``node=node_id`` attribution."""
        view = self._scoped.get(node_id)
        if view is None:
            view = self._scoped[node_id] = _ScopedProfiler(self, node_id)
        return view

    # -- rollups -----------------------------------------------------------------

    @property
    def total_cost(self) -> float:
        """Sum of modeled cost over all phases."""
        return sum(stat.cost for stat in self._phases.values())

    @property
    def total_ops(self) -> int:
        """Sum of operation counts over all phases."""
        return sum(stat.ops for stat in self._phases.values())

    def phase_shares(self) -> Dict[str, float]:
        """Each phase's share of the total, summing to 1.0 (± float eps).

        Shares are cost-weighted when any phase carried modeled cost;
        otherwise (a run with no drive attached) they fall back to
        operation-count weighting so the ranking is still meaningful.
        """
        total_cost = self.total_cost
        if total_cost > 0.0:
            return {
                phase: stat.cost / total_cost
                for phase, stat in self._phases.items()
            }
        total_ops = self.total_ops
        if total_ops > 0:
            return {
                phase: stat.ops / total_ops
                for phase, stat in self._phases.items()
            }
        return {phase: 0.0 for phase in self._phases}

    def top_cost_centers(self, n: Optional[int] = None) -> List[Dict]:
        """Phases ranked by (cost desc, ops desc, name) — the hot list.

        Returns at most *n* entries (all phases when None); each entry
        carries the phase name, ops, modeled cost, and share.
        """
        shares = self.phase_shares()
        ranked = sorted(
            self._phases.items(),
            key=lambda item: (-item[1].cost, -item[1].ops, item[0]),
        )
        if n is not None:
            if n < 1:
                raise ParameterError(f"top n must be >= 1, got {n}")
            ranked = ranked[:n]
        return [
            {
                "phase": phase,
                "ops": stat.ops,
                "cost_s": stat.cost,
                "share": shares[phase],
            }
            for phase, stat in ranked
        ]

    def node_summary(self, node_id: str) -> Dict[str, Dict]:
        """One node's per-phase attribution (empty when unseen)."""
        per_node = self._nodes.get(node_id, {})
        return {
            phase: stat.as_dict()
            for phase, stat in sorted(per_node.items())
        }

    def summary_dict(self) -> Dict:
        """The whole profile as a JSON-ready, byte-stable dict."""
        shares = self.phase_shares()
        top_streams = sorted(
            self._streams.items(),
            key=lambda item: (-item[1].cost, -item[1].ops, item[0]),
        )[: self.top_streams]
        return {
            "phases": {
                phase: {
                    "ops": stat.ops,
                    "cost_s": stat.cost,
                    "share": shares[phase],
                }
                for phase, stat in self._phases.items()
            },
            "total_cost_s": self.total_cost,
            "total_ops": self.total_ops,
            "top": self.top_cost_centers(),
            "per_stream": {
                "count": len(self._streams),
                "top": [
                    {
                        "stream": stream_id,
                        "ops": stat.ops,
                        "cost_s": stat.cost,
                    }
                    for stream_id, stat in top_streams
                ],
            },
            "per_drive": {
                label: {
                    phase: stat.as_dict()
                    for phase, stat in sorted(per_drive.items())
                }
                for label, per_drive in sorted(self._drives.items())
            },
            "per_node": {
                node: {
                    phase: stat.as_dict()
                    for phase, stat in sorted(per_node.items())
                }
                for node, per_node in sorted(self._nodes.items())
            },
            "checkpoints": len(self._checkpoints),
        }

    def snapshot(self) -> str:
        """Stable sorted-key JSON of :meth:`summary_dict`."""
        return json.dumps(self.summary_dict(), sort_keys=True, indent=2)

    def chrome_counter_events(self) -> List[Dict]:
        """Perfetto ``"C"`` counter events: one track per phase.

        Each retained checkpoint becomes one sample per phase that ever
        carried cost, on counter tracks named ``profile.<phase>`` —
        loadable next to the span export in ui.perfetto.dev.
        """
        active = [
            index for index, phase in enumerate(PHASES)
            if self._phases[phase].cost > 0.0
        ]
        events: List[Dict] = []
        for time, costs in self._checkpoints:
            for index in active:
                events.append({
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "name": f"profile.{PHASES[index]}",
                    "ts": round(time * 1e6, 3),
                    "args": {"cost_ms": round(costs[index] * 1e3, 6)},
                })
        return events

    def reset(self) -> None:
        """Drop everything recorded (a fresh profiler)."""
        for stat in self._phases.values():
            stat.ops = 0
            stat.cost = 0.0
        self._streams.clear()
        self._drives.clear()
        self._nodes.clear()
        self._checkpoints.clear()
        self._checkpoint_stride = 1
        self._checkpoint_calls = 0


class _ScopedProfiler:
    """A node-attributed facade over one shared :class:`CostProfiler`."""

    __slots__ = ("_parent", "node_id")

    def __init__(self, parent: CostProfiler, node_id: str):
        self._parent = parent
        self.node_id = node_id

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    def record(
        self,
        phase: str,
        cost: float = 0.0,
        ops: int = 1,
        drive: Optional[str] = None,
        node: Optional[str] = None,
    ) -> None:
        self._parent.record(
            phase, cost=cost, ops=ops, drive=drive,
            node=self.node_id if node is None else node,
        )

    def attribute_stream(
        self, stream_id: str, cost: float = 0.0, ops: int = 1
    ) -> None:
        self._parent.attribute_stream(stream_id, cost=cost, ops=ops)

    def checkpoint(self, time: float) -> None:
        self._parent.checkpoint(time)


# -- scoped registries -----------------------------------------------------------


class _PairedCounter:
    __slots__ = ("_shared", "_local")

    def __init__(self, shared, local):
        self._shared = shared
        self._local = local

    def inc(self, amount: int = 1) -> None:
        self._shared.inc(amount)
        self._local.inc(amount)

    @property
    def value(self) -> int:
        return self._local.value


class _PairedGauge:
    __slots__ = ("_shared", "_local")

    def __init__(self, shared, local):
        self._shared = shared
        self._local = local

    def set(self, value: float) -> None:
        self._shared.set(value)
        self._local.set(value)

    @property
    def value(self) -> float:
        return self._local.value


class _PairedHistogram:
    __slots__ = ("_shared", "_local")

    def __init__(self, shared, local):
        self._shared = shared
        self._local = local

    def observe(self, value: float) -> None:
        self._shared.observe(value)
        self._local.observe(value)


class _PairedTimer:
    __slots__ = ("_shared", "_local")

    def __init__(self, shared, local):
        self._shared = shared
        self._local = local

    def __enter__(self) -> "_PairedTimer":
        self._shared.__enter__()
        self._local.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._local.__exit__(*exc)
        self._shared.__exit__(*exc)


class ScopedRegistry:
    """Writes go to both a shared and a node-local registry.

    Reads (``peek_*``) resolve against the **shared** registry so
    derived evaluators (the SLO monitor) see cluster-wide values, while
    :meth:`snapshot_dict` serializes the **local** registry — the
    per-node breakdown :func:`merge_snapshots` folds back together.
    """

    def __init__(self, shared: MetricsRegistry, local: MetricsRegistry):
        self.shared = shared
        self.local = local
        self._counters: Dict[str, _PairedCounter] = {}
        self._gauges: Dict[str, _PairedGauge] = {}
        self._histograms: Dict[str, _PairedHistogram] = {}
        self._timers: Dict[str, _PairedTimer] = {}

    @property
    def enabled(self) -> bool:
        return self.shared.enabled

    def counter(self, name: str) -> _PairedCounter:
        pair = self._counters.get(name)
        if pair is None:
            pair = self._counters[name] = _PairedCounter(
                self.shared.counter(name), self.local.counter(name)
            )
        return pair

    def gauge(self, name: str) -> _PairedGauge:
        pair = self._gauges.get(name)
        if pair is None:
            pair = self._gauges[name] = _PairedGauge(
                self.shared.gauge(name), self.local.gauge(name)
            )
        return pair

    def histogram(self, name: str, buckets: Iterable[float]):
        pair = self._histograms.get(name)
        if pair is None:
            bounds = tuple(float(b) for b in buckets)
            pair = self._histograms[name] = _PairedHistogram(
                self.shared.histogram(name, bounds),
                self.local.histogram(name, bounds),
            )
        return pair

    def timer(self, name: str) -> _PairedTimer:
        pair = self._timers.get(name)
        if pair is None:
            pair = self._timers[name] = _PairedTimer(
                self.shared.timer(name), self.local.timer(name)
            )
        return pair

    def timed(self, name: str) -> _PairedTimer:
        return self.timer(name)

    def peek_counter(self, name: str) -> Optional[int]:
        return self.shared.peek_counter(name)

    def peek_histogram(self, name: str):
        return self.shared.peek_histogram(name)

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        return self.local.snapshot_dict(include_profile=include_profile)

    def snapshot(self, include_profile: bool = False) -> str:
        return self.local.snapshot(include_profile=include_profile)

    @staticmethod
    def diff(before, after) -> Dict:
        return MetricsRegistry.diff(before, after)


class ScopedObservability:
    """The node-scoped view of one shared :class:`Observability`.

    Everything event-shaped (timeline, audit, spans, SLOs, sim-tracer
    health) forwards to the parent unchanged — causality must cross
    nodes.  Metric writes are *paired*: they land in the parent registry
    (so cluster totals, SLO evaluation, and golden snapshots are
    byte-identical to legacy flat sharing) **and** in a private
    node-local registry serialized by :meth:`snapshot_dict`.  The
    profiler handle, when the parent has one, attributes every record
    to this view's node id.
    """

    def __init__(self, parent, node_id: str):
        if not node_id:
            raise ParameterError("scoped node_id must be non-empty")
        self.parent = parent
        self.node_id = node_id
        self.enabled = parent.enabled
        self.registry = ScopedRegistry(
            parent.registry, MetricsRegistry(parent.enabled)
        )
        self.timeline = parent.timeline
        self.audit = parent.audit
        self.tracer = parent.tracer

    @property
    def slo(self):
        """The parent's SLO monitor (attached after scoping is fine)."""
        return self.parent.slo

    @property
    def profiler(self):
        """Node-attributed view of the parent's profiler (or None)."""
        parent_profiler = self.parent.profiler
        if parent_profiler is None:
            return None
        return parent_profiler.scoped(self.node_id)

    def scoped(self, node_id: str) -> "ScopedObservability":
        """Scoping is flat: delegate to the parent."""
        return self.parent.scoped(node_id)

    def enable_slos(self, slos=None):
        return self.parent.enable_slos(slos)

    def attach_sim_tracer(self, tracer) -> None:
        self.parent.attach_sim_tracer(tracer)

    def timed(self, name: str):
        return self.registry.timed(name)

    def snapshot_dict(self, include_profile: bool = False) -> Dict:
        """This node's view: local metrics + its profiler attribution."""
        parent_profiler = self.parent.profiler
        return {
            "node_id": self.node_id,
            "metrics": self.registry.snapshot_dict(
                include_profile=include_profile
            ),
            "profile": (
                parent_profiler.node_summary(self.node_id)
                if parent_profiler is not None else {}
            ),
        }

    def snapshot(self, include_profile: bool = False) -> str:
        """Stable sorted-key JSON of this node's view."""
        return json.dumps(
            self.snapshot_dict(include_profile=include_profile),
            sort_keys=True,
            indent=2,
        )


def merge_snapshots(snapshots: Iterable[Union[str, Dict]]) -> Dict:
    """Fold per-node view snapshots into one cluster-level dict.

    Accepts :meth:`ScopedObservability.snapshot_dict` dicts (or their
    JSON strings, or bare registry ``snapshot_dict`` mappings) and
    merges deterministically:

    * **counters** and **timer calls** sum — so a merge over *every*
      scoped view of a run reproduces the shared registry's values
      exactly (the flat-equivalence acceptance bar);
    * **histograms** sum bucket-wise (bucket layouts must agree, or
      :class:`~repro.errors.ParameterError`); bucket counts merge
      exactly, while the float ``sum`` field is order-sensitive
      addition — it can differ from a flat-shared run's sum in the
      last ulp (compare with a relative tolerance, not ``==``);
    * **gauges** take the elementwise max — last-write-wins order does
      not survive a merge, so the merge picks the deterministic bound;
    * **profile** phase attributions sum ops and cost.

    Returns ``{"metrics": ..., "profile": ...}``; serialize with
    ``json.dumps(..., sort_keys=True)`` for the byte-stable form.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict] = {}
    timers: Dict[str, Dict] = {}
    profile: Dict[str, Dict[str, Union[int, float]]] = {}
    for snap in snapshots:
        if isinstance(snap, str):
            snap = json.loads(snap)
        metrics = snap.get("metrics", snap)
        for name, value in metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in metrics.get("gauges", {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, data in metrics.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "overflow": data["overflow"],
                    "count": data["count"],
                    "sum": data["sum"],
                }
                continue
            if merged["buckets"] != list(data["buckets"]):
                raise ParameterError(
                    f"histogram {name!r} bucket layouts disagree across "
                    "node snapshots"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], data["counts"])
            ]
            merged["overflow"] += data["overflow"]
            merged["count"] += data["count"]
            merged["sum"] += data["sum"]
        for name, data in metrics.get("timers", {}).items():
            entry = timers.get(name)
            if entry is None:
                timers[name] = dict(data)
                continue
            entry["calls"] += data.get("calls", 0)
            if "wall_seconds" in entry and "wall_seconds" in data:
                entry["wall_seconds"] += data["wall_seconds"]
        for phase, stat in snap.get("profile", {}).items():
            entry = profile.get(phase)
            if entry is None:
                profile[phase] = {
                    "ops": stat["ops"], "cost_s": stat["cost_s"],
                }
            else:
                entry["ops"] += stat["ops"]
                entry["cost_s"] += stat["cost_s"]
    return {
        "metrics": {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
            "timers": dict(sorted(timers.items())),
        },
        "profile": dict(sorted(profile.items())),
    }
