"""Canonical observed scenarios: one steady run, one faulted run.

These are the fixed, seed-deterministic workloads behind the
``repro obs-report`` CLI, the golden-trace regression tests, and the
benchmark snapshot artifacts.  Everything they touch is simulated, so a
scenario's :meth:`~repro.obs.Observability.snapshot` is byte-identical
across runs with the same arguments — that string *is* the golden file.

This module imports the full service stack and therefore must not be
imported by :mod:`repro.obs`'s package ``__init__`` (the observability
core stays dependency-free so every layer can import it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.fs import MultimediaStorageManager
from repro.media.frames import frames_for_duration
from repro.obs.observer import Observability
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession

__all__ = ["ScenarioRun", "run_steady_scenario", "run_fault_scenario"]

#: Seed shared with the chaos integration tests.
DEFAULT_SEED = 20260806


@dataclass
class ScenarioRun:
    """A completed scenario: the observer plus the session outcome."""

    obs: Observability
    result: object  #: :class:`repro.service.session.SessionResult`
    play_ids: List[str]

    def snapshot(self, include_profile: bool = False) -> str:
        """The run's stable JSON snapshot (golden-file content)."""
        return self.obs.snapshot(include_profile=include_profile)


def _build_server(obs: Observability) -> MultimediaRopeServer:
    profile = TESTBED_1991
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
        obs=obs,
    )
    return MultimediaRopeServer(msm)


def _record_plays(
    mrs: MultimediaRopeServer,
    requests: int,
    seconds: float,
    source: str,
) -> List[str]:
    profile = TESTBED_1991
    play_ids = []
    for i in range(requests):
        frames = frames_for_duration(
            profile.video, seconds, source=f"{source}-{i}"
        )
        request_id, rope_id = mrs.record(f"user-{i}", frames=frames)
        mrs.stop(request_id)
        play_ids.append(
            mrs.play(f"user-{i}", rope_id, media=Media.VIDEO)
        )
    return play_ids


def run_steady_scenario(
    seconds: float = 4.0,
    requests: int = 2,
    k: int = 4,
    obs: Optional[Observability] = None,
) -> ScenarioRun:
    """Steady state: *requests* healthy video playbacks, round-robin.

    No faults, no admission rejections — the baseline whose snapshot
    shows what a continuity-clean run looks like (every session
    conserved, zero ``fault.*`` counters, slack comfortably positive).
    """
    if obs is None:
        obs = Observability(seed=DEFAULT_SEED)
        obs.enable_slos()
    mrs = _build_server(obs)
    play_ids = _record_plays(mrs, requests, seconds, "steady")
    session = PlaybackSession(mrs)
    result = session.run(play_ids, k=k)
    return ScenarioRun(obs=obs, result=result, play_ids=play_ids)


def run_fault_scenario(
    seconds: float = 6.0,
    seed: int = DEFAULT_SEED,
    transient: int = 4,
    defects: int = 2,
    retry_budget: int = 2,
    k: int = 4,
    head_failure_at_op: Optional[int] = None,
    obs: Optional[Observability] = None,
) -> ScenarioRun:
    """Fault injection: one playback over a drive with scripted faults.

    Transients recover inside the retry budget (``fault.retries`` /
    ``fault.recovered_reads``), media defects each become exactly one
    skip (``fault.skips`` and a ``skipped`` terminal in the timeline),
    and an optional head failure degrades service and leaves a
    ``revalidate`` entry in the admission audit log.
    """
    if obs is None:
        obs = Observability(seed=seed)
        obs.enable_slos()
    mrs = _build_server(obs)
    play_ids = _record_plays(mrs, 1, seconds, "faulted")
    slots = [
        fetch.slot
        for fetch in mrs.playback_plan(play_ids[0]).video
        if fetch.slot is not None
    ]
    plan = FaultPlan.random(
        seed=seed,
        slots=slots,
        transient=transient,
        defects=defects,
        head_failure_at_op=head_failure_at_op,
    )
    mrs.msm.drive.attach_injector(FaultInjector(plan))
    session = PlaybackSession(
        mrs, recovery=RecoveryPolicy(retry_budget=retry_budget)
    )
    result = session.run(play_ids, k=k)
    return ScenarioRun(obs=obs, result=result, play_ids=play_ids)
