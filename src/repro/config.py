"""Named hardware profiles used throughout the reproduction.

Three environments recur in the paper and therefore in every experiment:

* :data:`TESTBED_1991` — the prototype environment of §5: SPARCstation +
  PC-AT with UVC video hardware (NTSC, 480×200 pixels, 12 bit color,
  digitizing and compressing at real-time rate) and an 8 KByte/s audio
  digitizer, storing onto the PC-AT's local disk.
* :data:`HDTV_2_5_GBIT` — the §3 motivating example: an HDTV-quality strand
  demanding "data transfer rates of up to 2.5 Gigabit/s" served by a
  "future disk array with 100 parallel heads and projected seek and latency
  times of the order of 10 ms" and 4 KByte blocks, which tops out around
  0.32 Gbit/s — the paper's argument that constrained allocation is
  fundamental, not an artifact of 1991 hardware.
* :data:`FAST_ARRAY_1995` — a projected near-future configuration used by
  the multi-client experiments to explore larger n_max values.

The 1991 prototype paper does not publish its disk's data sheet, so the
TESTBED_1991 numbers are period-typical values for a PC-AT SCSI drive
(≈1.25 MByte/s sustained transfer, ≈28 ms full-stroke access including
rotational latency, ≈18 ms average).  The UVC compression board's output
frame size is likewise not published; we model compressed NTSC frames at
8 KBytes (≈18:1 over the 141 KByte raw frame), which puts one video stream
at ≈1.97 Mbit/s — comfortably within one 1991 disk, as the prototype's
existence demonstrates it must have been.  These substitutions affect only
absolute magnitudes, never the comparative shapes the experiments check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.symbols import (
    AudioStream,
    DiskParameters,
    DisplayDeviceParameters,
    VideoStream,
)
from repro.units import (
    gigabits_per_second,
    kilobytes,
    kilobytes_per_second,
    megabits_per_second,
    milliseconds,
)

__all__ = [
    "HardwareProfile",
    "TESTBED_1991",
    "HDTV_2_5_GBIT",
    "FAST_ARRAY_1995",
    "PROFILES",
    "get_profile",
]


@dataclass(frozen=True)
class HardwareProfile:
    """A complete, named environment: streams + disk + display devices."""

    name: str
    description: str
    video: VideoStream
    audio: AudioStream
    disk: DiskParameters
    video_device: DisplayDeviceParameters
    audio_device: DisplayDeviceParameters
    #: Sector size used by the simulated disk, in bits.
    sector_bits: float = field(default=kilobytes(0.5))


#: §5 prototype environment (SPARCstation + PC-AT + UVC board).
TESTBED_1991 = HardwareProfile(
    name="testbed-1991",
    description=(
        "SOSP'91 prototype: NTSC video (30 fps, 8 KByte compressed frames "
        "via UVC board), 8 KByte/s audio, PC-AT local SCSI disk"
    ),
    video=VideoStream(frame_rate=30.0, frame_size=kilobytes(8)),
    audio=AudioStream(sample_rate=8000.0, sample_size=8.0),
    disk=DiskParameters(
        transfer_rate=megabits_per_second(10.0),
        seek_max=milliseconds(28.0),
        seek_avg=milliseconds(18.0),
        seek_track=milliseconds(5.0),
        cylinders=1024,
        heads=1,
    ),
    # The UVC board decompresses at real-time rate with a small margin;
    # display rate slightly above the disk's transfer rate keeps display
    # from being the bottleneck, matching the prototype's behaviour.
    video_device=DisplayDeviceParameters(
        display_rate=megabits_per_second(16.0), buffer_frames=8
    ),
    audio_device=DisplayDeviceParameters(
        display_rate=kilobytes_per_second(32), buffer_frames=8192
    ),
)

#: §3 worked example: HDTV vs a projected 100-head disk array.
HDTV_2_5_GBIT = HardwareProfile(
    name="hdtv-2.5gbit",
    description=(
        "HDTV strand (2.5 Gbit/s) on a projected disk array: 100 parallel "
        "heads, ~10 ms seek+latency, 4 KByte blocks"
    ),
    # 2.5 Gbit/s at 60 fps -> ~41.7 Mbit/frame.
    video=VideoStream(frame_rate=60.0, frame_size=gigabits_per_second(2.5) / 60.0),
    audio=AudioStream(sample_rate=48000.0, sample_size=16.0),
    disk=DiskParameters(
        # 80 Mbit/s per head: transferring a 4 KByte block takes ~0.4 ms,
        # so access time is dominated by the projected 10 ms seek+latency,
        # reproducing the paper's ~0.32 Gbit/s aggregate figure.
        transfer_rate=megabits_per_second(80.0),
        seek_max=milliseconds(10.0),
        seek_avg=milliseconds(10.0),
        seek_track=milliseconds(1.0),
        cylinders=2048,
        heads=100,
    ),
    video_device=DisplayDeviceParameters(
        display_rate=gigabits_per_second(3.0), buffer_frames=16
    ),
    audio_device=DisplayDeviceParameters(
        display_rate=megabits_per_second(2.0), buffer_frames=16384
    ),
)

#: A projected mid-90s array used for wider admission-control sweeps.
FAST_ARRAY_1995 = HardwareProfile(
    name="fast-array-1995",
    description=(
        "Projected mid-90s striped array: 40 Mbit/s effective transfer, "
        "20 ms max / 12 ms avg access, 4 heads"
    ),
    video=VideoStream(frame_rate=30.0, frame_size=kilobytes(8)),
    audio=AudioStream(sample_rate=8000.0, sample_size=8.0),
    disk=DiskParameters(
        transfer_rate=megabits_per_second(40.0),
        seek_max=milliseconds(20.0),
        seek_avg=milliseconds(12.0),
        seek_track=milliseconds(3.0),
        cylinders=2048,
        heads=4,
    ),
    video_device=DisplayDeviceParameters(
        display_rate=megabits_per_second(64.0), buffer_frames=16
    ),
    audio_device=DisplayDeviceParameters(
        display_rate=kilobytes_per_second(64), buffer_frames=16384
    ),
)

PROFILES = {
    profile.name: profile
    for profile in (TESTBED_1991, HDTV_2_5_GBIT, FAST_ARRAY_1995)
}


def get_profile(name: str) -> HardwareProfile:
    """Look up a profile by name, with a helpful error on typos."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown profile {name!r}; known profiles: {known}") from None
