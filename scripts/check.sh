#!/usr/bin/env bash
# The one-command CI gate: lint, tier-1 tests, then the smoke
# experiment matrix against its committed baseline (docs/EXPERIMENTS.md).
#
#   scripts/check.sh            # everything
#   SKIP_TESTS=1 scripts/check.sh   # lint + matrix gate only
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
elif python -c 'import ruff' >/dev/null 2>&1; then
    python -m ruff check .
else
    echo "ruff not installed; skipping lint"
fi

if [ "${SKIP_TESTS:-0}" != "1" ]; then
    echo "== tier-1 pytest =="
    python -m pytest -x -q
fi

echo "== smoke experiment matrix =="
python -m repro expt run --smoke --out results/smoke
python -m repro expt gate --manifest results/smoke/matrix.json

echo "== cluster smoke scenario =="
python -m repro cluster --smoke

echo "== profiler smoke =="
python -m repro profile --smoke

echo "check.sh: all gates passed"
