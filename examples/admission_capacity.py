#!/usr/bin/env python
"""Admission control under load: watching k, n_max, and startup latency.

A movies-on-demand server (the §1 entertainment scenario) takes playback
clients one at a time.  For each admission the script reports the
controller's staged k transition; at capacity the next client is
refused, and the whole admitted set is then serviced to prove the
real-time guarantee held for everyone.

Run:  python examples/admission_capacity.py
"""

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.errors import AdmissionRejected
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession
from repro.units import format_seconds


def main() -> None:
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(),
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)

    frames = frames_for_duration(profile.video, 10.0, source="movie")
    request_id, movie = mrs.record("studio", frames=frames,
                                   play_access=("public",))
    mrs.stop(request_id)
    print(f"catalogue: rope {movie} ({mrs.get_rope(movie).duration:.0f} s)")

    admitted = []
    while True:
        try:
            play_id = mrs.play("public", movie, media=Media.VIDEO)
        except AdmissionRejected as rejection:
            print(
                f"client #{len(admitted) + 1} REFUSED: n_max = "
                f"{rejection.n_max} (Eq. 17)"
            )
            break
        admitted.append(play_id)
        controller = msm.admission
        print(
            f"client #{len(admitted)} admitted: service runs "
            f"k = {controller.current_k} blocks/round"
        )

    print(f"\nservicing all {len(admitted)} admitted clients...")
    session = PlaybackSession(mrs)
    result = session.run(admitted)
    for number, play_id in enumerate(admitted, start=1):
        metrics = result.metrics[play_id]
        print(
            f"  client #{number}: startup "
            f"{format_seconds(metrics.startup_latency)}, "
            f"misses {metrics.misses}"
        )
    verdict = "held" if result.all_continuous else "VIOLATED"
    print(f"real-time guarantee {verdict} for every admitted client")
    print(
        "note the paper's observation: larger k buys capacity at the "
        "price of startup latency"
    )


if __name__ == "__main__":
    main()
