"""Fault injection and degraded service: playback on an unhealthy disk.

The paper guarantees continuity on a healthy drive; this example breaks
the drive on purpose.  A seeded :class:`FaultPlan` schedules transient
read errors (recoverable by bounded retry) and latent sector errors
(permanent — the block is skipped as a recorded glitch), the playback
session recovers what it can, and the trace explains every glitch.  The
same seed then replays bit-identically, and the identical workload on a
healthy drive plays clean — the glitches were the faults' doing, nothing
else.

Run:  PYTHONPATH=src python examples/fault_tolerance.py
"""

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.fs import MultimediaStorageManager
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession
from repro.sim.trace import Tracer

SEED = 42


def build_stack():
    """A fresh testbed server with one 8-second recorded clip."""
    profile = TESTBED_1991
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)
    frames = frames_for_duration(profile.video, 8.0, source="clip")
    request_id, rope_id = mrs.record("ops", frames=frames)
    mrs.stop(request_id)
    play_id = mrs.play("ops", rope_id, media=Media.VIDEO)
    return drive, mrs, play_id


def chaos_run(seed):
    """Play the clip over a seeded fault plan; return the summary."""
    drive, mrs, play_id = build_stack()
    slots = [
        fetch.slot
        for fetch in mrs.playback_plan(play_id).video
        if fetch.slot is not None
    ]
    plan = FaultPlan.random(seed=seed, slots=slots, transient=5, defects=2)
    drive.attach_injector(FaultInjector(plan))
    tracer = Tracer()
    session = PlaybackSession(
        mrs, tracer=tracer, recovery=RecoveryPolicy(retry_budget=2)
    )
    result = session.run([play_id], k=4)
    return drive, tracer, result, play_id


def main():
    print("=== Fault injection & degraded service ===")
    print(f"fault plan: seed={SEED}, 5 transient errors, 2 media defects")
    print()

    drive, tracer, result, play_id = chaos_run(SEED)
    metrics = result.metrics[play_id]
    print("-- chaos run --")
    print(f"blocks delivered : {metrics.blocks_delivered}")
    print(f"glitches (skips) : {metrics.skips}")
    print(f"faults injected  : {drive.stats.faults_injected}")
    print(f"retries issued   : {drive.stats.retries}")
    print(f"reads recovered  : {drive.stats.degraded_reads}")
    print()
    print("trace excerpt (every glitch is explained):")
    for event in tracer:
        if event.tag.startswith("fault."):
            print(f"  {event}")
    print()

    replay = chaos_run(SEED)[2].metrics[play_id]
    identical = replay.summary() == metrics.summary()
    print("-- deterministic replay --")
    print(f"same seed, byte-identical metrics: {identical}")
    print()

    _, healthy_mrs, healthy_play = build_stack()
    healthy = PlaybackSession(healthy_mrs).run([healthy_play], k=4)
    print("-- healthy baseline --")
    print(
        "same workload, no injection: "
        f"misses={healthy.metrics[healthy_play].misses} "
        f"(continuous={healthy.all_continuous})"
    )

    assert identical, "replay diverged"
    assert healthy.all_continuous
    assert metrics.skips == 2 and metrics.misses == 2


if __name__ == "__main__":
    main()
