#!/usr/bin/env python
"""Trick play and smarter storage: the §3.3.2 and §6.2 machinery.

An entertainment server demonstrates the behaviours beyond plain
playback:

1. fast-forward at 2× — with skipping (half the disk work) and without
   (double the buffering);
2. slow motion — buffers fill, the disk repeatedly hands its surplus
   bandwidth to other tasks, and playback still never glitches;
3. chapter triggers firing at exact media positions;
4. the §6.2 variable-rate payoff: how much more scattering tolerance a
   differencing codec buys over constant-rate storage.

Run:  python examples/trick_play.py
"""

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core import vbr_gain
from repro.core.symbols import video_block_model
from repro.disk import build_drive
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration
from repro.media.codec import DifferencingCodec
from repro.rope import MultimediaRopeServer
from repro.service import simulate_variable_speed


def main() -> None:
    profile = TESTBED_1991
    block = video_block_model(profile.video, 4)

    def fresh_plan():
        drive = build_drive()
        fetches = fetches_with_gap(
            drive, 120, drive.parameters().seek_avg,
            block.block_bits, block.playback_duration,
        )
        return drive, fetches

    # --- 1-2: variable-speed playback --------------------------------------
    print("variable-speed playback of a 16 s clip (120 blocks):")
    for label, speed, skipping, capacity in (
        ("normal 1.0x          ", 1.0, False, 8),
        ("fast-forward 2x skip ", 2.0, True, 8),
        ("fast-forward 2x full ", 2.0, False, 16),
        ("slow motion 0.5x     ", 0.5, False, 8),
    ):
        drive, fetches = fresh_plan()
        result = simulate_variable_speed(
            fetches, drive, speed=speed, skipping=skipping,
            buffer_capacity=capacity,
        )
        print(
            f"  {label} fetched {result.metrics.blocks_delivered:3d} "
            f"blocks, misses {result.metrics.misses}, task switches "
            f"{result.task_switches:2d}, disk idle "
            f"{result.switch_idle_time:5.1f} s"
        )

    # --- 3: chapter triggers -------------------------------------------------
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive, profile.video, profile.audio,
        profile.video_device, profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)
    frames = frames_for_duration(profile.video, 12.0, source="movie")
    request_id, rope_id = mrs.record("studio", frames=frames)
    mrs.stop(request_id)
    for time, chapter in ((0.0, "opening"), (4.0, "act II"), (9.0, "finale")):
        mrs.add_trigger("studio", rope_id, time, chapter)
    play_id = mrs.play("studio", rope_id)
    print("\nchapter triggers during playback:")
    for offset, text in mrs.trigger_schedule(play_id):
        print(f"  t={offset:6.3f} s  ->  {text!r}")

    # --- 4: the variable-rate payoff ------------------------------------------
    codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=10)
    comparison = vbr_gain(
        profile.video, codec, 4, build_drive().parameters()
    )
    print(
        f"\nvariable-rate storage (differencing codec): scattering bound "
        f"{comparison.cbr_bound * 1e3:.1f} ms (CBR) -> "
        f"{comparison.vbr_average_bound * 1e3:.1f} ms (VBR averaged), "
        f"a {comparison.gain:.2f}x gain for one GOP of read-ahead"
    )


if __name__ == "__main__":
    main()
