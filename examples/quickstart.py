#!/usr/bin/env python
"""Quickstart: derive a storage policy, record a clip, play it back.

This walks the library's central loop in ~60 lines:

1. pick the 1991 testbed hardware profile;
2. let the §3 analysis derive granularity and scattering bounds;
3. record a 10-second video+audio clip through the rope server
   (silence elimination included);
4. play it back through the round-robin service loop and verify
   the continuity requirement held.

Run:  python examples/quickstart.py
"""

import random

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration, generate_talk_spurts
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession
from repro.units import format_seconds


def main() -> None:
    profile = TESTBED_1991

    # --- 1-2: hardware + derived storage policy -------------------------
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )
    policy = msm.policies.video
    print(f"profile: {profile.description}")
    print(
        f"derived video policy: {policy.granularity} frames/block, "
        f"scattering within "
        f"[{format_seconds(policy.scattering_lower)}, "
        f"{format_seconds(policy.scattering_upper)}]"
    )

    # --- 3: RECORD -------------------------------------------------------
    mrs = MultimediaRopeServer(msm)
    rng = random.Random(2026)
    frames = frames_for_duration(profile.video, 10.0, source="camera0")
    chunks = generate_talk_spurts(profile.audio, 10.0, 0.35, rng)
    request_id, rope_id = mrs.record("you", frames=frames, chunks=chunks)
    mrs.stop(request_id)
    rope = mrs.get_rope(rope_id)
    audio_strand = msm.get_strand(rope.segments[0].audio.strand_id)
    print(
        f"recorded rope {rope_id}: {rope.duration:.2f} s, "
        f"{audio_strand.block_count - audio_strand.stored_block_count} "
        "audio blocks silence-eliminated"
    )

    # --- 4: PLAY and verify continuity ------------------------------------
    play_id = mrs.play("you", rope_id, media=Media.AUDIO_VISUAL)
    session = PlaybackSession(mrs)
    result = session.run([play_id])
    metrics = result.metrics[play_id]
    print(
        f"playback: {metrics.blocks_delivered} blocks in "
        f"{result.rounds} service round(s), "
        f"startup latency {format_seconds(metrics.startup_latency)}, "
        f"deadline misses: {metrics.misses}"
    )
    assert metrics.continuous, "continuity requirement violated!"
    print("continuity requirement satisfied — every block met its deadline")


if __name__ == "__main__":
    main()
