#!/usr/bin/env python
"""News distribution: compose a bulletin from clips in an editing session.

The §1 news-distribution scenario through the Fig.-12 editor backend: an
editor opens three raw clips, assembles a bulletin (anchor intro →
field report excerpt → anchor outro), dubs narration over part of the
field footage, previews, and undoes a mistake.  The §4.2 seam repairer
runs automatically after every operation.

Run:  python examples/news_editing.py
"""

import random

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration, generate_talk_spurts
from repro.rope import EditingSession, Media, MultimediaRopeServer
from repro.service import PlaybackSession


def main() -> None:
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(),
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)
    session = EditingSession(mrs, user="editor")
    rng = random.Random(11)

    # Ingest three raw clips.
    for name, seconds in (("anchor", 15.0), ("field", 30.0),
                          ("narration", 8.0)):
        frames = frames_for_duration(profile.video, seconds, source=name)
        chunks = generate_talk_spurts(profile.audio, seconds, 0.3, rng)
        request_id, rope_id = mrs.record(
            "editor", frames=frames, chunks=chunks
        )
        mrs.stop(request_id)
        session.open(name, rope_id)
        print(f"ingested {name}: {session.status(name)['length']}")

    # Assemble the bulletin.
    session.substring("anchor", "bulletin", 0.0, 6.0)       # intro
    session.insert("bulletin", 6.0, "field", 10.0, 12.0)    # excerpt
    session.concate("bulletin", "anchor")                   # outro (full)
    print(
        f"assembled bulletin: {session.status('bulletin')['length']} in "
        f"{session.status('bulletin')['intervals']} intervals"
    )
    if mrs.last_repair and mrs.last_repair.seams_repaired:
        print(
            f"seam repair copied {mrs.last_repair.blocks_copied} block(s) "
            "to keep the edited rope continuously playable"
        )

    # Dub narration audio over the field excerpt.
    session.replace(
        "bulletin", Media.AUDIO, 6.0, 8.0, "narration", 0.0, 8.0
    )
    print("dubbed narration over the field excerpt (video untouched)")

    # Oops — too much outro; trim, then change of heart: undo.
    session.delete("bulletin", 20.0, 5.0)
    print(f"after trim: {session.status('bulletin')['length']}")
    undone = session.undo()
    print(f"undid {undone}: {session.status('bulletin')['length']}")

    # Preview the final cut.
    rope_id = session.rope("bulletin").rope_id
    play_id = mrs.play("editor", rope_id)
    result = PlaybackSession(mrs).run([play_id])
    metrics = result.metrics[play_id]
    print(
        f"preview: {metrics.blocks_delivered} blocks, "
        f"misses {metrics.misses}, "
        f"operations logged: {[entry.operation for entry in session.log]}"
    )


if __name__ == "__main__":
    main()
