#!/usr/bin/env python
"""The unified file server: media guarantees + text files + mixed clients.

The §3 claim, end to end: one disk serves real-time video, real-time
audio, and conventional text files together.

1. Media strands are stored with constrained scattering; text blocks are
   stored in the gaps (GapFiller).
2. A *mixed* client population (video + audio-only) is admitted with the
   general per-request-k solver — the paper's averaged model would
   reject this mix outright.
3. The round loop serves every media stream glitch-free, and spends each
   round's leftover Eq.-(11) budget on text reads.

Run:  python examples/unified_server.py
"""

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core import GeneralAdmissionController, RequestDescriptor
from repro.core.symbols import BlockModel, video_block_model
from repro.disk import GapFiller, build_drive, FreeMap
from repro.service.besteffort import TextRequest, UnifiedService
from repro.service.rounds import StreamState


def main() -> None:
    profile = TESTBED_1991
    drive = build_drive()
    params = drive.parameters()

    # --- mixed-client admission -------------------------------------------
    video_block = video_block_model(profile.video, 4)
    audio_block = BlockModel(
        unit_rate=profile.audio.sample_rate,
        unit_size=profile.audio.sample_size,
        granularity=4096,
    )
    video_req = RequestDescriptor(video_block, scattering_avg=params.seek_avg)
    audio_req = RequestDescriptor(audio_block, scattering_avg=params.seek_avg)
    controller = GeneralAdmissionController(params)
    population = [("video", video_req)] * 2 + [("audio", audio_req)] * 4
    decisions = []
    for kind, descriptor in population:
        decision = controller.admit(descriptor)
        decisions.append((kind, descriptor, decision.request_id))
        print(
            f"admitted {kind} client #{decision.request_id}: "
            f"k_i = {controller.k_for(decision.request_id)}"
        )
    print(
        "(the paper's averaged single-k model rejects this mix; the "
        "general Eq.-11 solver admits it)\n"
    )

    # --- build the service: media streams + a text queue --------------------
    streams = []
    for kind, descriptor, request_id in decisions:
        k = controller.k_for(request_id)
        block = descriptor.block
        fetches = fetches_with_gap(
            drive, 60, params.seek_avg, block.block_bits,
            block.playback_duration,
        )
        streams.append(
            StreamState(
                request_id=f"{kind}{request_id}",
                fetches=fetches,
                buffer_capacity=2 * k,
                k_override=k,
            )
        )
    text = TextRequest("mail-spool", list(range(5000, 5300)))
    service = UnifiedService(
        drive,
        lambda round_number, n: max(controller.k_values().values()),
        text_requests=[text],
    )
    metrics = service.run(streams)

    # --- report ----------------------------------------------------------------
    print("service results:")
    for request_id, m in sorted(metrics.items()):
        print(
            f"  {request_id:<8} {m.blocks_delivered:3d} blocks, "
            f"misses {m.misses}"
        )
    total_misses = sum(m.misses for m in metrics.values())
    print(
        f"\ntext served in media slack: {service.text_blocks_served} of "
        f"{len(text.slots)} blocks "
        f"({service.text_time_used:.2f} s of disk time)"
    )
    service.drain_text(0.0)
    print(f"text completed after media drain: {text.finished}")
    verdict = "held" if total_misses == 0 else "VIOLATED"
    print(f"real-time guarantee {verdict} for all 6 media clients")


if __name__ == "__main__":
    main()
