#!/usr/bin/env python
"""Video mail: the §1 motivating service, end to end.

A sender records a message, trims a false start, prepends a stored
signature clip, and grants the recipient play access.  The recipient
plays the message; storage is shared (no media copied during editing)
and reclaimed by garbage collection once both parties delete their
ropes.

Run:  python examples/video_mail.py
"""

import random

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.errors import AccessDenied
from repro.fs import MultimediaStorageManager
from repro.media import frames_for_duration, generate_talk_spurts
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession


def blocks_on_disk(msm) -> int:
    return sum(
        msm.get_strand(s).stored_block_count for s in msm.strand_ids()
    )


def main() -> None:
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(),
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )
    mrs = MultimediaRopeServer(msm)
    rng = random.Random(7)

    # The sender's stored signature clip (2 s) and new message (20 s).
    q, signature = mrs.record(
        "alice",
        frames=frames_for_duration(profile.video, 2.0, source="sig"),
        chunks=generate_talk_spurts(profile.audio, 2.0, 0.1, rng),
    )
    mrs.stop(q)
    q, message = mrs.record(
        "alice",
        frames=frames_for_duration(profile.video, 20.0, source="msg"),
        chunks=generate_talk_spurts(profile.audio, 20.0, 0.4, rng),
    )
    mrs.stop(q)
    print(f"recorded signature {signature} and message {message}")
    before_edit = blocks_on_disk(msm)

    # Edit: cut the false start (first 3 s), prepend the signature.
    mrs.delete("alice", message, Media.AUDIO_VISUAL, 0.0, 3.0)
    mrs.insert(
        "alice", message, 0.0, Media.AUDIO_VISUAL, signature, 0.0, 2.0
    )
    rope = mrs.get_rope(message)
    print(
        f"edited message: {rope.duration:.1f} s in "
        f"{rope.interval_count()} strand intervals; media blocks copied "
        f"during editing: {blocks_on_disk(msm) - before_edit}"
    )

    # Deliver: grant play access, then the recipient plays it.
    mrs.grant_access("alice", message, play=("bob",))
    try:
        mrs.delete("bob", message, Media.AUDIO_VISUAL, 0.0, 1.0)
        raise AssertionError("bob must not be able to edit")
    except AccessDenied:
        print("access control: bob can play but not edit — as granted")

    play_id = mrs.play("bob", message)
    result = PlaybackSession(mrs).run([play_id])
    print(
        f"bob played {result.metrics[play_id].blocks_delivered} blocks, "
        f"misses: {result.metrics[play_id].misses}"
    )

    # Cleanup: alice deletes her ropes; shared strands survive only as
    # long as someone references them.
    reclaimed = mrs.delete_rope("alice", signature)
    print(f"deleting the signature rope reclaimed: {reclaimed or 'nothing'}")
    reclaimed = mrs.delete_rope("alice", message)
    print(f"deleting the message reclaimed strands: {reclaimed}")
    print(f"disk occupancy now: {msm.occupancy:.3f}")


if __name__ == "__main__":
    main()
