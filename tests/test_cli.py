"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestProfiles:
    def test_lists_all_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "testbed-1991" in out
        assert "hdtv-2.5gbit" in out
        assert "fast-array-1995" in out
        assert "Mbit" in out


class TestPolicy:
    def test_default_profile(self, capsys):
        assert main(["policy"]) == 0
        out = capsys.readouterr().out
        assert "video: granularity" in out
        assert "pipelined l_ds bound" in out

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            main(["policy", "--profile", "nope"])


class TestExperiments:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 22)}

    def test_single_experiment(self, capsys):
        assert main(["experiments", "e7"]) == 0
        out = capsys.readouterr().out
        assert "HDTV" in out

    def test_multiple_experiments(self, capsys):
        assert main(["experiments", "e2", "e5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "read-ahead" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["experiments", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs_continuously(self, capsys):
        assert main(["demo", "--seconds", "4"]) == 0
        out = capsys.readouterr().out
        assert "recorded rope" in out
        assert "misses 0" in out


class TestServe:
    def test_serve_small_scenario(self, capsys):
        assert main([
            "serve", "--sessions", "6", "--strands", "2",
            "--seconds", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "6 admitted" in out
        assert "2 batches" in out

    def test_serve_json_is_the_serve_result_shape(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--strands", "2",
            "--seconds", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["admitted"] == 4
        assert payload["continuous_sessions"] == 4
        assert payload["cache_stats"]["hits"] > 0
        assert len(payload["sessions"]) == 4

    def test_serve_compare_batched_beats_per_request(self, capsys):
        assert main([
            "serve", "--compare", "--sessions", "8", "--strands", "2",
            "--seconds", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["batched"]["continuous"] > (
            payload["per_request"]["continuous"]
        )

    def test_serve_smoke_emits_snapshot(self, capsys):
        assert main(["serve", "--smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload
        assert payload["metrics"]["counters"]["server.batches"] > 0

    def test_serve_no_cache_disables_batching(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--strands", "2",
            "--seconds", "1", "--no-cache", "--json",
        ]) == 0  # the admitted subset still plays without misses
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_stats"] == {}
        assert payload["batches"] == 4
        # Without the cache there is no batching: per-request admission
        # fills the controller and overload rejects the tail.
        assert payload["admitted"] < 4
        assert payload["sessions"][-1]["state"] == "rejected"


class TestCluster:
    def test_cluster_smoke_emits_snapshot(self, capsys):
        assert main(["cluster", "--smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["metrics"]["counters"]
        assert counters["cluster.handoffs_total"] >= 1
        assert counters["cluster.handoffs_total"] == (
            counters["cluster.handoffs_clean"]
        )

    def test_cluster_json_reports_bounds_and_placement(self, capsys):
        assert main([
            "cluster", "--nodes", "3", "--sessions", "8",
            "--titles", "4", "--per-node-streams", "8",
            "--seconds", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["admitted"] == 8
        assert payload["summary"]["continuous"] == 8
        assert payload["bounds"]["full_catalog"] == 24
        assert set(payload["placement"]) == {
            "T01", "T02", "T03", "T04",
        }

    def test_cluster_failover_hands_off_cleanly(self, capsys):
        assert main(["cluster", "--failover", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["handoffs"] >= 1
        assert summary["handoff_clean_ratio"] > 0.9
        assert summary["continuous"] == summary["admitted"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    @staticmethod
    def _subcommand_options(name):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        sub = subparsers.choices[name]
        return {
            option
            for action in sub._actions
            for option in action.option_strings
        }

    def test_scenario_commands_share_seed_and_json_options(self):
        for name in (
            "demo", "obs-report", "perf-sweep", "serve", "trace-export",
            "cluster", "profile",
        ):
            options = self._subcommand_options(name)
            assert "--seed" in options, name
            assert "--json" in options, name

    def test_expt_subcommands_share_the_json_option(self):
        # expt run/gate/diff take --json through the same shared
        # builder as the scenario commands (seed does not apply: the
        # matrix's seeds axis owns seeding).
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        expt = subparsers.choices["expt"]
        nested = next(
            a for a in expt._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        for name in ("run", "gate", "diff"):
            sub = nested.choices[name]
            options = {
                option
                for action in sub._actions
                for option in action.option_strings
            }
            assert "--json" in options, name
            assert "--seed" not in options, name

    def test_profile_flags_present(self):
        options = self._subcommand_options("profile")
        for flag in (
            "--preset", "--streams", "--blocks", "--top", "--smoke",
            "--trace-out",
        ):
            assert flag in options, flag

    def test_obs_report_gained_cluster_and_top(self):
        options = self._subcommand_options("obs-report")
        assert "--cluster" in options
        assert "--top" in options

    def test_cluster_failover_flags_present(self):
        options = self._subcommand_options("cluster")
        for flag in (
            "--nodes", "--sessions", "--titles", "--per-node-streams",
            "--chunks", "--failover", "--kill-node", "--kill-chunk",
            "--smoke",
        ):
            assert flag in options, flag


class TestTraceExport:
    def test_json_output_is_a_chrome_trace(self, capsys):
        assert main([
            "trace-export", "--scenario", "steady", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["clock"] == "simulated"
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X"}

    def test_export_is_deterministic(self, capsys):
        payloads = []
        for _ in range(2):
            assert main([
                "trace-export", "--scenario", "steady", "--json",
            ]) == 0
            payloads.append(capsys.readouterr().out)
        assert payloads[0] == payloads[1]

    def test_out_writes_perfetto_loadable_file(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main([
            "trace-export", "--scenario", "steady",
            "--out", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote {target}" in out
        document = json.loads(target.read_text())
        assert document["traceEvents"]

    def test_summary_mentions_viewer_without_out(self, capsys):
        assert main(["trace-export", "--scenario", "steady"]) == 0
        assert "perfetto" in capsys.readouterr().out


class TestProfile:
    def test_smoke_exits_zero_with_one_line(self, capsys):
        assert main(["profile", "--smoke"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out.splitlines()) == 1
        assert "hottest" in out

    def test_json_is_byte_deterministic(self, capsys):
        payloads = []
        for _ in range(2):
            assert main(["profile", "--smoke", "--json"]) == 0
            payloads.append(capsys.readouterr().out)
        assert payloads[0] == payloads[1]
        section = json.loads(payloads[0])
        shares = sum(
            stat["share"] for stat in section["phases"].values()
        )
        assert abs(shares - 1.0) <= 1e-9

    def test_steady_preset_prints_cost_centers(self, capsys):
        assert main([
            "profile", "--preset", "steady", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost centers" in out
        assert "transfer" in out

    def test_trace_out_writes_counter_tracks(self, tmp_path, capsys):
        target = tmp_path / "profile.json"
        assert main([
            "profile", "--smoke", "--trace-out", str(target),
        ]) == 0
        document = json.loads(target.read_text())
        counter_events = [
            event for event in document["traceEvents"]
            if event["ph"] == "C"
        ]
        assert counter_events
        assert all(
            event["name"].startswith("profile.")
            for event in counter_events
        )

    def test_obs_report_cluster_preset(self, capsys):
        assert main(["obs-report", "--cluster"]) == 0
        out = capsys.readouterr().out
        assert "cluster.handoffs_total" in out


class TestExtensionExperimentsViaCli:
    def test_extension_experiment_runs(self, capsys):
        assert main(["experiments", "e13"]) == 0
        out = capsys.readouterr().out
        assert "variable-rate" in out

    def test_ablation_experiments_not_in_registry(self):
        # Ablations run through benchmarks, not the eN registry.
        assert "ablate" not in " ".join(EXPERIMENTS)
