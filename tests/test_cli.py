"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestProfiles:
    def test_lists_all_profiles(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "testbed-1991" in out
        assert "hdtv-2.5gbit" in out
        assert "fast-array-1995" in out
        assert "Mbit" in out


class TestPolicy:
    def test_default_profile(self, capsys):
        assert main(["policy"]) == 0
        out = capsys.readouterr().out
        assert "video: granularity" in out
        assert "pipelined l_ds bound" in out

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            main(["policy", "--profile", "nope"])


class TestExperiments:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 22)}

    def test_single_experiment(self, capsys):
        assert main(["experiments", "e7"]) == 0
        out = capsys.readouterr().out
        assert "HDTV" in out

    def test_multiple_experiments(self, capsys):
        assert main(["experiments", "e2", "e5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "read-ahead" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["experiments", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs_continuously(self, capsys):
        assert main(["demo", "--seconds", "4"]) == 0
        out = capsys.readouterr().out
        assert "recorded rope" in out
        assert "misses 0" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExtensionExperimentsViaCli:
    def test_extension_experiment_runs(self, capsys):
        assert main(["experiments", "e13"]) == 0
        out = capsys.readouterr().out
        assert "variable-rate" in out

    def test_ablation_experiments_not_in_registry(self):
        # Ablations run through benchmarks, not the eN registry.
        assert "ablate" not in " ".join(EXPERIMENTS)
