"""End-to-end tests for the MediaServer front end."""

import pytest

from repro.api import (
    Media,
    OpenSessionRequest,
    PauseRequest,
    PlayRequest,
    RejectReason,
    ResumeRequest,
    SessionState,
    StopRequest,
)
from repro.errors import ParameterError
from repro.obs import Observability
from repro.server.scenarios import (
    _record_strands,
    build_media_server,
    run_server_hot_scenario,
    run_server_steady_scenario,
)

pytestmark = pytest.mark.server

CLIENTS = [f"client-{i}" for i in range(8)] + ["warmer"]


@pytest.fixture
def server():
    return build_media_server()


def _rope(server, seconds=1.0, clients=CLIENTS):
    return _record_strands(server.mrs, 1, seconds, clients, "t")[0]


def _open(rope_id, client="client-0", **overrides):
    defaults = dict(
        client_id=client, rope_id=rope_id, media=Media.VIDEO,
    )
    defaults.update(overrides)
    return OpenSessionRequest(**defaults)


class TestLifecycle:
    def test_open_play_complete(self, server):
        rope_id = _rope(server)
        response = server.open(_open(rope_id, auto_play=False))
        assert response.accepted
        assert server.status(response.session_id).state is SessionState.OPEN
        server.play(PlayRequest(session_id=response.session_id))
        result = server.serve([])
        status = result.status_of(response.session_id)
        assert status.state is SessionState.COMPLETED
        assert status.continuous
        assert status.blocks_delivered > 0

    def test_auto_play_schedules_immediately(self, server):
        rope_id = _rope(server)
        response = server.open(_open(rope_id))
        assert (
            server.status(response.session_id).state is SessionState.PLAYING
        )

    def test_pause_resume_roundtrip(self, server):
        rope_id = _rope(server)
        sid = server.open(_open(rope_id)).session_id
        assert server.pause(
            PauseRequest(session_id=sid)
        ).state is SessionState.PAUSED
        assert server.resume(
            ResumeRequest(session_id=sid)
        ).state is SessionState.PLAYING
        result = server.serve([])
        assert result.status_of(sid).state is SessionState.COMPLETED

    def test_destructive_pause_releases_and_readmits(self, server):
        rope_id = _rope(server)
        sid = server.open(_open(rope_id)).session_id
        controller = server.mrs.msm.admission
        assert controller.active_count == 1
        server.pause(PauseRequest(session_id=sid, destructive=True))
        assert controller.active_count == 0
        server.resume(ResumeRequest(session_id=sid))
        assert controller.active_count == 1
        result = server.serve([])
        assert result.status_of(sid).state is SessionState.COMPLETED
        assert controller.active_count == 0

    def test_stop_releases_resources(self, server):
        rope_id = _rope(server)
        sid = server.open(_open(rope_id)).session_id
        status = server.stop(StopRequest(session_id=sid))
        assert status.state is SessionState.STOPPED
        assert server.mrs.msm.admission.active_count == 0
        # Stopped sessions are not serviced.
        assert server.serve([]).statuses == ()

    def test_verbs_guard_states(self, server):
        rope_id = _rope(server)
        sid = server.open(_open(rope_id)).session_id
        with pytest.raises(ParameterError):
            server.play(PlayRequest(session_id=sid))  # already PLAYING
        with pytest.raises(ParameterError):
            server.resume(ResumeRequest(session_id=sid))
        with pytest.raises(ParameterError):
            server.status("C9999")


class TestTypedRejects:
    def test_unknown_rope(self, server):
        response = server.open(_open("R9999"))
        assert not response.accepted
        assert response.reject is RejectReason.UNKNOWN_ROPE

    def test_access_denied(self, server):
        rope_id = _rope(server)
        response = server.open(_open(rope_id, client="stranger"))
        assert response.reject is RejectReason.ACCESS_DENIED

    def test_empty_interval(self, server):
        rope_id = _rope(server)
        response = server.open(_open(rope_id, length=-1.0))
        assert response.reject is RejectReason.EMPTY_INTERVAL

    def test_capacity_overload_is_typed_not_raised(self, server):
        """Solo opens beyond n_max come back CAPACITY, no exception."""
        rope_id = _rope(server, seconds=2.0)
        responses = [
            server.open(_open(rope_id, client=f"client-{i}", start=0.0))
            for i in range(8)
        ]
        # Identical intervals, but open() never batches: each open holds
        # its own slot, so the controller fills up and refuses the rest.
        accepted = [r for r in responses if r.accepted]
        rejected = [r for r in responses if not r.accepted]
        assert accepted and rejected
        assert all(
            r.reject in (RejectReason.CAPACITY, RejectReason.K_BOUND)
            for r in rejected
        )

    def test_requeue_budget_exhaustion_is_queue_full(self):
        obs = Observability()
        server = build_media_server(obs=obs, requeue_limit=2)
        rope_id = _rope(server, seconds=2.0)
        requests = [
            _open(rope_id, client=f"client-{i}", start=0.1 * i)
            for i in range(8)
        ]
        # Distinct intervals: no batching, so the tail exceeds capacity,
        # gets re-queued twice, then is refused as QUEUE_FULL.
        result = server.serve(requests)
        assert result.rejects
        assert all(
            r.reject is RejectReason.QUEUE_FULL for r in result.rejects
        )
        assert all(r.requeues == 2 for r in result.rejects)


class TestBatchedServe:
    def test_same_interval_requests_share_one_batch(self, server):
        rope_id = _rope(server)
        result = server.serve([
            _open(rope_id, client=f"client-{i}", arrival=0.02 * i)
            for i in range(4)
        ])
        assert result.batches == 1
        leaders = {s.batch_leader for s in result.statuses}
        assert len(leaders) == 1
        assert result.admitted == 4
        assert result.continuous_sessions == 4

    def test_followers_ride_the_leader_reads(self, server):
        rope_id = _rope(server)
        result = server.serve([
            _open(rope_id, client=f"client-{i}") for i in range(3)
        ])
        stats = result.cache_stats
        # One physical pass over the strand; the two followers hit.
        assert stats["misses"] == stats["insertions"]
        assert stats["hits"] >= 2 * stats["misses"]
        # Every session still delivered its whole sequence.
        assert len({
            result.block_sequences[s.session_id]
            for s in result.statuses
        }) == 1

    def test_batch_uses_one_admission_slot(self, server):
        rope_id = _rope(server)
        server.serve([
            _open(rope_id, client=f"client-{i}") for i in range(5)
        ])
        calls = server.channel.calls_by_method()
        assert calls.get("admit", 0) == 1
        assert calls.get("release", 0) == 1

    def test_without_cache_batching_is_disabled(self):
        server = build_media_server(cache_blocks=0)
        assert not server.batching
        rope_id = _rope(server)
        result = server.serve([
            _open(rope_id, client=f"client-{i}") for i in range(2)
        ])
        assert result.batches == 2
        assert result.cache_stats == {}

    def test_serve_refuses_untyped_requests(self, server):
        with pytest.raises(ParameterError):
            server.serve(["not-a-request"])


class TestCacheAwareAdmission:
    def test_warm_cache_admits_without_controller(self):
        run = run_server_hot_scenario(sessions=6, strands=2, seconds=1.0)
        final = run.results[-1]
        assert final.admitted == 6
        assert all(s.cache_admitted for s in final.statuses)
        # The controller holds no slots for the cache-admitted wave.
        calls = run.server.channel.calls_by_method()
        warm_epochs = len(run.rope_ids)
        assert calls["admit"] == warm_epochs
        assert run.server.mrs.msm.admission.active_count == 0

    def test_hot_wave_exceeds_per_request_capacity(self):
        run = run_server_hot_scenario(sessions=50, strands=5, seconds=2.0)
        final = run.results[-1]
        n_max = run.server.mrs.msm.admission.capacity(
            run.server.mrs.msm.descriptor_for_media(True)
        )
        assert final.continuous_sessions == 50 > n_max

    def test_completion_unpins_the_cache(self):
        run = run_server_hot_scenario(sessions=6, strands=2, seconds=1.0)
        assert run.server.cache.pinned_count == 0


class TestObservability:
    def test_counters_and_audit_trail(self):
        obs = Observability()
        run = run_server_steady_scenario(obs=obs)
        snapshot = run.obs.registry.counter("server.sessions_opened")
        assert snapshot.value == len(run.final.statuses)
        decisions = [
            e for e in obs.audit.entries()
            if e.subject.startswith("batch")
        ]
        assert decisions
        for entry in decisions:
            assert entry.evaluate()
