"""Golden-trace regressions for the MediaServer scenarios.

The observability snapshot of each canonical server scenario is a pure
function of the code: admission arithmetic, batching, cache behavior,
fault recovery, and the service loop all feed it.  Any behavioral drift
shows up as a byte diff against ``tests/golden/``; regenerate
intentionally with ``pytest --regen-golden``.
"""

import json

import pytest

from repro.server import (
    run_server_fault_scenario,
    run_server_hot_scenario,
    run_server_steady_scenario,
)

pytestmark = [pytest.mark.server, pytest.mark.golden]


class TestSteadyGolden:
    def test_snapshot_matches_golden(self, golden):
        run = run_server_steady_scenario()
        golden("server_steady_snapshot.json", run.snapshot())

    def test_rerun_is_byte_identical(self):
        assert run_server_steady_scenario().snapshot() == (
            run_server_steady_scenario().snapshot()
        )

    def test_steady_epoch_is_clean(self):
        run = run_server_steady_scenario()
        assert run.final.total_misses == 0
        assert run.final.continuous_sessions == len(run.final.statuses)


class TestHotGolden:
    def test_snapshot_matches_golden(self, golden):
        run = run_server_hot_scenario()
        golden("server_hot_snapshot.json", run.snapshot())

    def test_rerun_is_byte_identical(self):
        assert run_server_hot_scenario().snapshot() == (
            run_server_hot_scenario().snapshot()
        )

    def test_hot_wave_is_batched_and_cache_admitted(self):
        run = run_server_hot_scenario()
        final = run.final
        assert final.batches == len(run.rope_ids)
        assert final.continuous_sessions == 50
        snapshot = json.loads(run.snapshot())
        counters = snapshot["metrics"]["counters"]
        assert counters["cache.hits"] >= counters["cache.misses"]
        assert counters["server.batches"] >= final.batches


class TestFaultGolden:
    def test_snapshot_matches_golden(self, golden):
        run = run_server_fault_scenario()
        golden("server_fault_snapshot.json", run.snapshot())

    def test_rerun_is_byte_identical(self):
        assert run_server_fault_scenario().snapshot() == (
            run_server_fault_scenario().snapshot()
        )

    def test_faults_skip_on_every_member_never_corrupt_the_cache(self):
        """A defective block skips for the leader *and* the follower —
        a failed read must never be served from residency."""
        run = run_server_fault_scenario()
        statuses = run.final.statuses
        assert len(statuses) == 2
        skips = [s.skips for s in statuses]
        assert all(count > 0 for count in skips)
        # Both sessions saw the same defective blocks.
        assert len(set(skips)) == 1
        counters = json.loads(run.snapshot())["metrics"]["counters"]
        assert counters["fault.skips"] == sum(skips)
