"""Property: the cache changes timing, never content or order.

For any workload both configurations admit, a cache-enabled run and a
cache-disabled run must deliver byte-identical per-stream block
sequences — the cache (and the batching built on it) is purely a
disk-budget optimization.  Sequences are compared per *client*, since
session IDs are assigned in admission order, which batching may permute.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import OpenSessionRequest
from repro.rope import Media
from repro.server.scenarios import _record_strands, build_media_server

pytestmark = pytest.mark.server


def _serve_wave(cache_blocks, batch_window, sessions, strands, seconds):
    """One identical hot wave on a freshly built server."""
    server = build_media_server(
        cache_blocks=cache_blocks, batch_window=batch_window
    )
    clients = [f"client-{i}" for i in range(sessions)]
    rope_ids = _record_strands(server.mrs, strands, seconds, clients, "eq")
    result = server.serve([
        OpenSessionRequest(
            client_id=clients[i],
            rope_id=rope_ids[i % strands],
            arrival=0.01 * i,
            media=Media.VIDEO,
        )
        for i in range(sessions)
    ])
    by_client = {}
    for status in result.statuses:
        sequence = result.block_sequences.get(status.session_id)
        if sequence is not None:
            by_client[status.client_id] = sequence
    return by_client


class TestCacheEquivalence:
    # The §3.4 testbed admits 3 video streams per-request, so waves of
    # <= 3 are admitted by both configurations and comparable 1:1.
    @settings(max_examples=8, deadline=None)
    @given(
        sessions=st.integers(min_value=1, max_value=3),
        strands=st.integers(min_value=1, max_value=3),
        seconds=st.sampled_from([0.5, 1.0, 1.5]),
    )
    def test_block_sequences_identical_with_and_without_cache(
        self, sessions, strands, seconds
    ):
        strands = min(strands, sessions)
        cached = _serve_wave(512, 0.25, sessions, strands, seconds)
        uncached = _serve_wave(0, 0.0, sessions, strands, seconds)
        assert set(cached) == set(uncached)
        assert len(cached) == sessions
        for client, sequence in uncached.items():
            assert cached[client] == sequence, client

    def test_followers_deliver_the_leader_sequence(self):
        waves = _serve_wave(512, 0.25, 3, 1, 1.0)
        assert len(set(waves.values())) == 1
