"""Batched admission is conservative: it never over-commits the disk.

The batching optimization may admit *more sessions* than per-request
admission (that is its point), but the *physical* load it places on the
disk — one controller-admitted stream per batch, plus zero-budget
cache-admitted sessions — must always be a set the per-request §3.4
controller would itself admit.  These tests replay every physical
admission the server made through a fresh controller and require it to
agree.
"""

import pytest

from repro.api import OpenSessionRequest, SessionState
from repro.core.admission import AdmissionController
from repro.rope import Media
from repro.server.scenarios import (
    _record_strands,
    build_media_server,
    run_server_hot_scenario,
)

pytestmark = pytest.mark.server


def _physical_leaders(server, result):
    """Sessions that consumed a controller slot in *result*'s epoch."""
    return [
        s for s in result.statuses
        if s.state is not SessionState.REJECTED
        and not s.cache_admitted
        and s.batch_leader == s.session_id
    ]


def _replays_cleanly(server, leaders):
    """A fresh per-request controller admits every physical stream."""
    controller = AdmissionController(disk=server.mrs.msm.disk_params)
    descriptor = server.mrs.msm.descriptor_for_media(True)
    for _ in leaders:
        controller.admit(descriptor)  # raises AdmissionRejected on refusal
    return True


class TestBatchedAdmissionIsConservative:
    @pytest.mark.parametrize("sessions,strands", [(4, 1), (9, 3), (12, 2)])
    def test_cold_cache_batches_replay_per_request(self, sessions, strands):
        server = build_media_server()
        clients = [f"client-{i}" for i in range(sessions)]
        rope_ids = _record_strands(server.mrs, strands, 1.0, clients, "t")
        result = server.serve([
            OpenSessionRequest(
                client_id=clients[i],
                rope_id=rope_ids[i % strands],
                media=Media.VIDEO,
            )
            for i in range(sessions)
        ])
        leaders = _physical_leaders(server, result)
        assert leaders, "expected at least one physical stream"
        assert _replays_cleanly(server, leaders)

    def test_hot_scenario_physical_set_replays_per_request(self):
        run = run_server_hot_scenario(sessions=20, strands=4, seconds=1.0)
        for result in run.results:
            leaders = _physical_leaders(run.server, result)
            assert _replays_cleanly(run.server, leaders)

    def test_admitted_sessions_can_exceed_physical_capacity(self):
        """The capability claim, stated as the complement: batch +
        cache admission serves more sessions than the controller's
        n_max, while the physical set stays within it."""
        run = run_server_hot_scenario(sessions=20, strands=4, seconds=1.0)
        final = run.results[-1]
        descriptor = run.server.mrs.msm.descriptor_for_media(True)
        n_max = run.server.mrs.msm.admission.capacity(descriptor)
        assert final.admitted > n_max
        assert len(_physical_leaders(run.server, final)) <= n_max
