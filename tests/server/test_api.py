"""Unit tests for the typed public API surface (repro.api)."""

import dataclasses

import pytest

import repro
from repro.api import (
    Media,
    OpenSessionRequest,
    OpenSessionResponse,
    RejectReason,
    ServeResult,
    SessionState,
    SessionStatus,
)

pytestmark = pytest.mark.server


def _status(session_id="C0001", **overrides):
    defaults = dict(
        session_id=session_id,
        client_id="alice",
        rope_id="R0001",
        state=SessionState.COMPLETED,
        blocks_delivered=10,
        misses=0,
        skips=0,
        startup_latency=0.05,
        request_id="Q0001",
    )
    defaults.update(overrides)
    return SessionStatus(**defaults)


class TestMessages:
    def test_requests_are_frozen(self):
        request = OpenSessionRequest(client_id="alice", rope_id="R0001")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.rope_id = "R0002"

    def test_open_request_defaults(self):
        request = OpenSessionRequest(client_id="alice", rope_id="R0001")
        assert request.arrival == 0.0
        assert request.start == 0.0
        assert request.length is None
        assert request.media is Media.VIDEO
        assert request.auto_play

    def test_response_carries_typed_reject(self):
        response = OpenSessionResponse(
            session_id=None, accepted=False,
            reject=RejectReason.CAPACITY,
        )
        assert not response.accepted
        assert response.reject is RejectReason.CAPACITY
        assert response.cache_admitted is False


class TestSessionStatus:
    def test_continuous_iff_no_misses(self):
        assert _status(misses=0).continuous
        assert not _status(misses=1).continuous

    def test_to_dict_key_set_is_stable(self):
        payload = _status().to_dict()
        assert set(payload) == {
            "session_id", "client_id", "rope_id", "request_id", "state",
            "blocks_delivered", "misses", "skips", "startup_latency",
            "batch_leader", "cache_admitted", "continuous",
            "node_id", "handoffs",
        }
        assert payload["state"] == "completed"

    def test_cluster_addressing_defaults_to_unplaced(self):
        status = _status()
        assert status.node_id is None
        assert status.handoffs == 0
        placed = _status(node_id="node-02", handoffs=1)
        assert placed.to_dict()["node_id"] == "node-02"
        assert placed.to_dict()["handoffs"] == 1


class TestServeResult:
    def _result(self):
        statuses = (
            _status("C0001"),
            _status("C0002", misses=2),
            _status("C0003", state=SessionState.REJECTED),
        )
        return ServeResult(
            statuses=statuses,
            rejects=(
                OpenSessionResponse(
                    session_id="C0003", accepted=False,
                    reject=RejectReason.CAPACITY,
                ),
            ),
            rounds=12,
            k_used=2,
            batches=2,
        )

    def test_admitted_excludes_rejected(self):
        assert self._result().admitted == 2

    def test_continuous_counts_glitch_free_completions(self):
        assert self._result().continuous_sessions == 1

    def test_total_misses_sums_sessions(self):
        assert self._result().total_misses == 2

    def test_status_of_lookup(self):
        result = self._result()
        assert result.status_of("C0002").misses == 2
        with pytest.raises(KeyError):
            result.status_of("C9999")

    def test_to_dict_shape(self):
        payload = self._result().to_dict()
        assert payload["admitted"] == 2
        assert payload["rejects"][0]["reject"] == "capacity"
        assert len(payload["sessions"]) == 3


class TestClusterMessages:
    def _cluster_result(self):
        from repro.api import ClusterServeResult, HandoffRecord, NodeStatus

        statuses = (
            _status("S0001", node_id="node-00"),
            _status("S0002", node_id="node-01", handoffs=1, misses=1),
            _status("S0003", state=SessionState.REJECTED),
        )
        return ClusterServeResult(
            statuses=statuses,
            rejects=(
                OpenSessionResponse(
                    session_id="S0003", accepted=False,
                    reject=RejectReason.NO_REPLICA,
                ),
            ),
            nodes=(
                NodeStatus(node_id="node-00", sessions=1),
                NodeStatus(node_id="node-01", alive=False),
            ),
            handoffs=(
                HandoffRecord(
                    session_id="S0002", rope_id="T01",
                    from_node="node-01", to_node="node-00",
                    at_chunk=1, clean=True,
                ),
            ),
            chunks=2,
        )

    def test_cluster_messages_are_frozen(self):
        from repro.api import NodeStatus

        node = NodeStatus(node_id="node-00")
        with pytest.raises(dataclasses.FrozenInstanceError):
            node.alive = False

    def test_no_replica_is_a_typed_reject(self):
        assert RejectReason.NO_REPLICA.value == "no_replica"

    def test_admitted_excludes_rejected(self):
        assert self._cluster_result().admitted == 2

    def test_continuous_requires_glitch_free_completion(self):
        # S0002 handed off but recorded a miss: not continuous.
        assert self._cluster_result().continuous_sessions == 1

    def test_handoff_record_round_trips(self):
        record = self._cluster_result().handoffs[0]
        payload = record.to_dict()
        assert payload["from_node"] == "node-01"
        assert payload["to_node"] == "node-00"
        assert payload["clean"] is True

    def test_to_dict_carries_nodes_and_handoffs(self):
        payload = self._cluster_result().to_dict()
        assert len(payload["nodes"]) == 2
        assert len(payload["handoffs"]) == 1
        assert payload["rejects"][0]["reject"] == "no_replica"


class TestFacade:
    def test_api_types_reexported_at_top_level(self):
        assert repro.OpenSessionRequest is OpenSessionRequest
        assert repro.MediaServer.__name__ == "MediaServer"
        assert repro.api is not None
        assert repro.server is not None

    def test_cluster_types_reexported_at_top_level(self):
        from repro.api import ClusterServeResult, HandoffRecord

        assert repro.ClusterServeResult is ClusterServeResult
        assert repro.HandoffRecord is HandoffRecord
        assert repro.MediaCluster.__name__ == "MediaCluster"
        assert repro.cluster is not None

    def test_deprecated_aliases_are_gone(self):
        # The PEP 562 compatibility shims were removed in 2.0: old
        # aliases now fail loudly instead of warning and resolving.
        for name in (
            "MultimediaStorageManager", "PlaybackSession", "stub_for",
        ):
            with pytest.raises(AttributeError):
                getattr(repro, name)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_name
