"""Unit tests for the typed public API surface (repro.api)."""

import dataclasses

import pytest

import repro
from repro.api import (
    Media,
    OpenSessionRequest,
    OpenSessionResponse,
    RejectReason,
    ServeResult,
    SessionState,
    SessionStatus,
)

pytestmark = pytest.mark.server


def _status(session_id="C0001", **overrides):
    defaults = dict(
        session_id=session_id,
        client_id="alice",
        rope_id="R0001",
        state=SessionState.COMPLETED,
        blocks_delivered=10,
        misses=0,
        skips=0,
        startup_latency=0.05,
        request_id="Q0001",
    )
    defaults.update(overrides)
    return SessionStatus(**defaults)


class TestMessages:
    def test_requests_are_frozen(self):
        request = OpenSessionRequest(client_id="alice", rope_id="R0001")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.rope_id = "R0002"

    def test_open_request_defaults(self):
        request = OpenSessionRequest(client_id="alice", rope_id="R0001")
        assert request.arrival == 0.0
        assert request.start == 0.0
        assert request.length is None
        assert request.media is Media.VIDEO
        assert request.auto_play

    def test_response_carries_typed_reject(self):
        response = OpenSessionResponse(
            session_id=None, accepted=False,
            reject=RejectReason.CAPACITY,
        )
        assert not response.accepted
        assert response.reject is RejectReason.CAPACITY
        assert response.cache_admitted is False


class TestSessionStatus:
    def test_continuous_iff_no_misses(self):
        assert _status(misses=0).continuous
        assert not _status(misses=1).continuous

    def test_to_dict_key_set_is_stable(self):
        payload = _status().to_dict()
        assert set(payload) == {
            "session_id", "client_id", "rope_id", "request_id", "state",
            "blocks_delivered", "misses", "skips", "startup_latency",
            "batch_leader", "cache_admitted", "continuous",
        }
        assert payload["state"] == "completed"


class TestServeResult:
    def _result(self):
        statuses = (
            _status("C0001"),
            _status("C0002", misses=2),
            _status("C0003", state=SessionState.REJECTED),
        )
        return ServeResult(
            statuses=statuses,
            rejects=(
                OpenSessionResponse(
                    session_id="C0003", accepted=False,
                    reject=RejectReason.CAPACITY,
                ),
            ),
            rounds=12,
            k_used=2,
            batches=2,
        )

    def test_admitted_excludes_rejected(self):
        assert self._result().admitted == 2

    def test_continuous_counts_glitch_free_completions(self):
        assert self._result().continuous_sessions == 1

    def test_total_misses_sums_sessions(self):
        assert self._result().total_misses == 2

    def test_status_of_lookup(self):
        result = self._result()
        assert result.status_of("C0002").misses == 2
        with pytest.raises(KeyError):
            result.status_of("C9999")

    def test_to_dict_shape(self):
        payload = self._result().to_dict()
        assert payload["admitted"] == 2
        assert payload["rejects"][0]["reject"] == "capacity"
        assert len(payload["sessions"]) == 3


class TestFacade:
    def test_api_types_reexported_at_top_level(self):
        assert repro.OpenSessionRequest is OpenSessionRequest
        assert repro.MediaServer.__name__ == "MediaServer"
        assert repro.api is not None
        assert repro.server is not None

    def test_deprecated_aliases_warn_but_resolve(self):
        from repro.fs import MultimediaStorageManager
        from repro.service import PlaybackSession
        from repro.service.rpc import stub_for

        for name, target in (
            ("MultimediaStorageManager", MultimediaStorageManager),
            ("PlaybackSession", PlaybackSession),
            ("stub_for", stub_for),
        ):
            with pytest.warns(DeprecationWarning):
                assert getattr(repro, name) is target

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_name
