"""Unit tests for the bounded LRU block cache and the cached drive."""

import pytest

from repro.disk import BlockCache, CachedDrive, build_drive
from repro.errors import (
    MediaDefectError,
    ParameterError,
    TransientReadError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec

pytestmark = pytest.mark.server


class TestBlockCacheLru:
    def test_miss_then_hit(self):
        cache = BlockCache(4)
        assert not cache.lookup(7)
        cache.insert(7)
        assert cache.lookup(7)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)        # refresh 1; 2 becomes LRU
        cache.insert(3)
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache
        assert cache.stats.evictions == 1

    def test_reinsert_refreshes_without_counting(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.insert(1)        # refresh, not a new insertion
        assert cache.stats.insertions == 2
        cache.insert(3)        # evicts 2, the true LRU
        assert 2 not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            BlockCache(0)


class TestBlockCachePinning:
    def test_pin_is_all_or_nothing(self):
        cache = BlockCache(4)
        cache.insert(1)
        assert not cache.pin([1, 2])   # 2 not resident
        assert cache.pinned_count == 0
        assert cache.stats.pin_failures == 1
        cache.insert(2)
        assert cache.pin([1, 2])
        assert cache.pinned_count == 2

    def test_pinned_slots_survive_lru_pressure(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.pin([1])
        cache.insert(3)        # must evict 2, not the pinned 1
        assert 1 in cache
        assert 2 not in cache

    def test_fully_pinned_cache_refuses_inserts(self):
        cache = BlockCache(2)
        cache.insert(1)
        cache.insert(2)
        cache.pin([1, 2])
        assert not cache.insert(3)
        assert 3 not in cache

    def test_unpin_is_refcounted(self):
        cache = BlockCache(4)
        cache.insert(1)
        cache.pin([1])
        cache.pin([1])
        cache.unpin([1])
        assert cache.pinned_count == 1
        cache.unpin([1])
        assert cache.pinned_count == 0

    def test_invalidate_counts_and_drops(self):
        cache = BlockCache(4)
        cache.insert(1)
        cache.invalidate(1)
        assert 1 not in cache
        assert cache.stats.invalidations == 1
        cache.invalidate(99)   # absent: not an invalidation
        assert cache.stats.invalidations == 1

    def test_resident_fraction_is_pure(self):
        cache = BlockCache(4)
        cache.insert(1)
        cache.insert(2)
        before = cache.stats.accesses
        assert cache.resident_fraction([1, 2]) == 1.0
        assert cache.resident_fraction([1, 3]) == 0.5
        assert cache.resident_fraction([None, 1]) == 1.0
        assert cache.resident_fraction([]) == 1.0
        assert cache.stats.accesses == before


class TestCachedDrive:
    def _cached(self, capacity=8, hit_time=0.0):
        drive = build_drive()
        cache = BlockCache(capacity)
        return drive, cache, CachedDrive(drive, cache, hit_time=hit_time)

    def test_hit_costs_hit_time_not_mechanism_time(self):
        _drive, _cache, cached = self._cached(hit_time=0.001)
        first = cached.read_slot(5)
        assert first > 0.001    # a real seek + rotation + transfer
        again = cached.read_slot(5)
        assert again == 0.001

    def test_miss_populates_and_proxies_surface(self):
        drive, cache, cached = self._cached()
        assert cached.slots == drive.slots
        assert cached.block_bits == drive.block_bits
        cached.read_slot(3)
        assert 3 in cache
        assert cache.stats.insertions == 1

    def test_write_through_invalidates(self):
        _drive, cache, cached = self._cached()
        cached.read_slot(4)
        assert 4 in cache
        cached.write_slot(4)
        assert 4 not in cache
        assert cache.stats.invalidations == 1

    def test_transient_fault_never_populates(self):
        drive, cache, cached = self._cached()
        plan = FaultPlan(
            specs=(FaultSpec(kind=FaultKind.TRANSIENT, slot=6),)
        )
        cached.attach_injector(FaultInjector(plan))
        with pytest.raises(TransientReadError):
            cached.read_slot(6)
        assert 6 not in cache
        # The retry (fault consumed) succeeds and caches normally.
        cached.read_slot(6)
        assert 6 in cache

    def test_defect_invalidates_stale_residency(self):
        drive, cache, cached = self._cached()
        cached.read_slot(6)
        assert 6 in cache
        cache.invalidate(6)    # simulate the block aging out...
        cache.stats.invalidations = 0
        plan = FaultPlan(
            specs=(FaultSpec(kind=FaultKind.MEDIA_DEFECT, slot=6),)
        )
        cached.attach_injector(FaultInjector(plan))
        with pytest.raises(MediaDefectError):
            cached.read_slot(6)
        assert 6 not in cache

    def test_hit_skips_the_injector_entirely(self):
        drive, cache, cached = self._cached()
        cached.read_slot(6)
        plan = FaultPlan(
            specs=(FaultSpec(kind=FaultKind.MEDIA_DEFECT, slot=6),)
        )
        cached.attach_injector(FaultInjector(plan))
        # Resident: served from memory, the bad media is never touched.
        assert cached.read_slot(6) == 0.0
