"""Unit tests for deterministic admission-batch grouping."""

import pytest

from repro.api import OpenSessionRequest
from repro.errors import ParameterError
from repro.rope import Media
from repro.server import group_into_batches

pytestmark = pytest.mark.server


def _open(client, rope, arrival, start=0.0):
    return OpenSessionRequest(
        client_id=client, rope_id=rope, arrival=arrival, start=start,
        media=Media.VIDEO,
    )


class TestGrouping:
    def test_same_interval_within_window_is_one_batch(self):
        requests = [
            _open("a", "R1", 0.00),
            _open("b", "R1", 0.10),
            _open("c", "R1", 0.20),
        ]
        batches = group_into_batches(requests, window=0.25)
        assert len(batches) == 1
        assert batches[0].leader.client_id == "a"
        assert [r.client_id for r in batches[0].followers] == ["b", "c"]
        assert batches[0].size == 3

    def test_window_measured_from_the_leader(self):
        requests = [
            _open("a", "R1", 0.0),
            _open("b", "R1", 0.2),
            _open("c", "R1", 0.3),  # 0.3 > window from leader a
        ]
        batches = group_into_batches(requests, window=0.25)
        assert [b.leader.client_id for b in batches] == ["a", "c"]

    def test_different_ropes_never_share_a_batch(self):
        requests = [_open("a", "R1", 0.0), _open("b", "R2", 0.0)]
        assert len(group_into_batches(requests, window=1.0)) == 2

    def test_different_intervals_never_share_a_batch(self):
        requests = [
            _open("a", "R1", 0.0, start=0.0),
            _open("b", "R1", 0.0, start=1.0),
        ]
        assert len(group_into_batches(requests, window=1.0)) == 2

    def test_arrival_order_decides_leadership_not_submission(self):
        requests = [_open("late", "R1", 0.2), _open("early", "R1", 0.0)]
        batches = group_into_batches(requests, window=1.0)
        assert len(batches) == 1
        assert batches[0].leader.client_id == "early"
        assert batches[0].admit_time == 0.0

    def test_disabled_or_zero_window_is_per_request(self):
        requests = [_open("a", "R1", 0.0), _open("b", "R1", 0.0)]
        assert len(group_into_batches(requests, window=0.0)) == 2
        assert len(
            group_into_batches(requests, window=1.0, enabled=False)
        ) == 2

    def test_batches_ordered_by_admit_time(self):
        requests = [
            _open("c", "R2", 0.5),
            _open("a", "R1", 0.0),
            _open("b", "R1", 0.1),
        ]
        batches = group_into_batches(requests, window=0.25)
        assert [b.admit_time for b in batches] == [0.0, 0.5]

    def test_negative_window_refused(self):
        with pytest.raises(ParameterError):
            group_into_batches([], window=-0.1)

    def test_grouping_is_deterministic(self):
        requests = [
            _open(f"c{i}", f"R{i % 3}", (i * 7 % 5) / 10.0)
            for i in range(20)
        ]
        first = group_into_batches(requests, window=0.25)
        second = group_into_batches(requests, window=0.25)
        assert [
            [r.client_id for r in b.requests] for b in first
        ] == [[r.client_id for r in b.requests] for b in second]
