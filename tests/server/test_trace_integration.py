"""End-to-end trace integration: one session, one connected tree.

The acceptance bar for the tracing subsystem: running the golden steady
server scenario, every session's spans — from the MRS front end through
the marshalled RPC boundary into the MSM admission, then per-round
service, cache, and disk access — form a *single* connected tree rooted
at ``server.request``, and the whole export is reproducible bit for bit
under the fixed seed.
"""

import json

import pytest

from repro.server.scenarios import run_server_steady_scenario

pytestmark = [pytest.mark.server, pytest.mark.trace]


@pytest.fixture(scope="module")
def steady_tracer():
    return run_server_steady_scenario().obs.tracer


def _session_roots(tracer):
    roots = tracer.spans(name="server.request")
    assert roots, "steady scenario produced no session root spans"
    return roots


class TestConnectedTree:
    def test_every_session_trace_is_one_connected_tree(self, steady_tracer):
        for root in _session_roots(steady_tracer):
            assert steady_tracer.trace_is_connected(root.trace_id)
            assert steady_tracer.roots_of(root.trace_id) == [root]

    def test_admission_path_crosses_the_rpc_boundary(self, steady_tracer):
        tracer = steady_tracer
        for root in _session_roots(tracer):
            names = {
                span.name for span in tracer.spans(trace_id=root.trace_id)
            }
            # MRS front end -> marshalled RPC -> MSM admission.
            assert {"server.admit", "rpc.admit", "msm.admit"} <= names
            # Service rounds down to the disk arm, cache included.
            assert {
                "service.stream", "service.block",
                "cache.read", "disk.access",
            } <= names

    def test_disk_access_ancestry_reaches_server_request(
        self, steady_tracer
    ):
        tracer = steady_tracer
        for access in tracer.spans(name="disk.access"):
            span, hops = access, 0
            while span.parent_id is not None:
                span = tracer.span(span.parent_id)
                assert span is not None, "dangling parent reference"
                hops += 1
                assert hops < 32, "unreasonably deep span ancestry"
            assert span.name == "server.request"
            assert span.session == access.session

    def test_admit_chain_parents_in_order(self, steady_tracer):
        tracer = steady_tracer
        for msm in tracer.spans(name="msm.admit"):
            rpc = tracer.span(msm.parent_id)
            assert rpc is not None and rpc.name == "rpc.admit"
            admit = tracer.span(rpc.parent_id)
            assert admit is not None and admit.name == "server.admit"
            root = tracer.span(admit.parent_id)
            assert root is not None and root.name == "server.request"

    def test_spans_cover_every_session(self, steady_tracer):
        sessions = {
            root.session for root in _session_roots(steady_tracer)
        }
        assert len(sessions) == len(_session_roots(steady_tracer))
        assert None not in sessions

    def test_no_spans_dropped_or_left_open(self, steady_tracer):
        summary = steady_tracer.summary_dict()
        assert summary["dropped"] == 0
        assert summary["open"] == 0
        assert summary["orphans"] == 0


class TestDeterministicExport:
    def test_rerun_exports_byte_identical_trace(self, steady_tracer):
        first = json.dumps(
            steady_tracer.to_chrome_trace(), indent=2, sort_keys=True
        )
        second = json.dumps(
            run_server_steady_scenario().obs.tracer.to_chrome_trace(),
            indent=2,
            sort_keys=True,
        )
        assert first == second

    def test_span_timestamps_are_simulated_not_wall(self, steady_tracer):
        # Wall-clock leakage shows up as huge epoch-scale timestamps;
        # the simulated clock stays within the scenario's run seconds.
        latest = max(
            span.end for span in steady_tracer.spans() if span.end
        )
        assert latest < 1e4
