"""Smoke tests: every shipped example must run clean end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def run_example(path: Path, capsys) -> str:
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(path.stem, None)
    return capsys.readouterr().out


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "video_mail", "news_editing"} <= names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_example_runs(self, path, capsys):
        out = run_example(path, capsys)
        assert out.strip(), f"{path.stem} produced no output"
        lowered = out.lower()
        assert "violated" not in lowered
        assert "failed" not in lowered

    def test_quickstart_reports_continuity(self, capsys):
        out = run_example(
            Path(__file__).parent.parent / "examples" / "quickstart.py",
            capsys,
        )
        assert "continuity requirement satisfied" in out

    def test_admission_example_shows_refusal(self, capsys):
        out = run_example(
            Path(__file__).parent.parent / "examples"
            / "admission_capacity.py",
            capsys,
        )
        assert "REFUSED" in out
        assert "real-time guarantee held" in out
