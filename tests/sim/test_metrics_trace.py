"""Unit tests for continuity metrics and tracing."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim.metrics import ContinuityMetrics, SweepSeries
from repro.sim.trace import Tracer


class TestContinuityMetrics:
    def test_on_time_blocks(self):
        metrics = ContinuityMetrics()
        metrics.record_delivery(arrival=1.0, deadline=1.0)
        metrics.record_delivery(arrival=0.5, deadline=2.0)
        assert metrics.continuous
        assert metrics.misses == 0
        assert metrics.miss_ratio == 0.0
        assert metrics.blocks_delivered == 2

    def test_late_blocks_counted(self):
        metrics = ContinuityMetrics()
        metrics.record_delivery(arrival=1.5, deadline=1.0)
        metrics.record_delivery(arrival=3.0, deadline=2.0)
        assert not metrics.continuous
        assert metrics.misses == 2
        assert metrics.max_lateness == pytest.approx(1.0)
        assert metrics.total_lateness == pytest.approx(1.5)
        assert metrics.miss_ratio == 1.0

    def test_jitter_peak_to_peak(self):
        metrics = ContinuityMetrics()
        metrics.record_delivery(arrival=0.5, deadline=1.0)  # -0.5
        metrics.record_delivery(arrival=2.3, deadline=2.0)  # +0.3
        assert metrics.jitter == pytest.approx(0.8)

    def test_mean_lateness(self):
        metrics = ContinuityMetrics()
        metrics.record_delivery(arrival=0.9, deadline=1.0)
        metrics.record_delivery(arrival=2.1, deadline=2.0)
        assert metrics.mean_lateness == pytest.approx(0.0)

    def test_empty_metrics(self):
        metrics = ContinuityMetrics()
        assert metrics.continuous
        assert metrics.miss_ratio == 0.0
        assert metrics.jitter == 0.0
        assert metrics.mean_lateness == 0.0


class TestSweepSeries:
    def test_add_and_lookup(self):
        series = SweepSeries("s", "x", "y")
        series.add(1.0, 10.0)
        series.add(2.0, 20.0)
        assert len(series) == 2
        assert series.y_at(2.0) == 20.0

    def test_missing_x(self):
        series = SweepSeries("s", "x", "y")
        with pytest.raises(ParameterError):
            series.y_at(5.0)


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "read", "req1", "block 0")
        tracer.emit(2.0, "miss", "req1", "block 1")
        tracer.emit(3.0, "read", "req2", "block 0")
        assert len(tracer) == 3
        assert len(tracer.filter(tag="read")) == 2
        assert len(tracer.filter(subject="req1")) == 2
        assert len(tracer.filter(tag="read", subject="req2")) == 1
        assert tracer.counts_by_tag() == {"read": 2, "miss": 1}

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "read", "x")
        assert len(tracer) == 0

    def test_limit_drops_oldest(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.emit(float(i), "t", f"s{i}")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.filter(subject="s4")

    def test_render(self):
        tracer = Tracer(limit=2)
        for i in range(3):
            tracer.emit(float(i), "tag", "subj", "detail")
        text = tracer.render()
        assert "dropped" in text
        assert "tag" in text


class TestTracerFifoTruncation:
    """The FIFO drop path in detail: chaos soak runs emit millions of
    events, so bounded retention must keep exactly the newest `limit`
    records, count every drop, and say so when rendered."""

    def test_retains_exactly_the_newest_limit_events(self):
        tracer = Tracer(limit=5)
        for i in range(12):
            tracer.emit(float(i), "tick", "soak", str(i))
        assert len(tracer) == 5
        assert tracer.dropped == 7
        assert [event.detail for event in tracer] == [
            "7", "8", "9", "10", "11"
        ]

    def test_drop_order_is_strictly_oldest_first(self):
        tracer = Tracer(limit=3)
        for i in range(3):
            tracer.emit(float(i), "t", "s", str(i))
        assert tracer.dropped == 0
        tracer.emit(3.0, "t", "s", "3")
        assert [event.detail for event in tracer] == ["1", "2", "3"]
        tracer.emit(4.0, "t", "s", "4")
        assert [event.detail for event in tracer] == ["2", "3", "4"]
        assert tracer.dropped == 2

    def test_large_volume_stays_bounded_and_counts_all_drops(self):
        limit = 100
        total = 25_000
        tracer = Tracer(limit=limit)
        for i in range(total):
            tracer.emit(float(i), "fault.inject", "soak", str(i))
        assert len(tracer) == limit
        assert tracer.dropped == total - limit
        assert [event.detail for event in tracer][0] == str(total - limit)
        assert tracer.counts_by_tag() == {"fault.inject": limit}

    def test_render_reports_the_drop_count(self):
        tracer = Tracer(limit=2)
        for i in range(9):
            tracer.emit(float(i), "t", "s")
        assert "... 7 earlier events dropped ..." in tracer.render()

    def test_disabled_tracer_never_drops(self):
        tracer = Tracer(enabled=False, limit=1)
        for i in range(10):
            tracer.emit(float(i), "t", "s")
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestTracerStrictMode:
    """The "no events dropped" contract: `dropped_count` lets tests
    assert completeness, and strict mode turns a would-be drop into a
    hard error instead of silently losing the oldest record."""

    def test_dropped_count_mirrors_dropped(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            tracer.emit(float(i), "t", "s")
        assert tracer.dropped_count == 2
        assert tracer.dropped_count == tracer.dropped

    def test_complete_trace_reports_zero_dropped(self):
        tracer = Tracer(limit=10)
        for i in range(10):
            tracer.emit(float(i), "t", "s")
        assert tracer.dropped_count == 0

    def test_strict_mode_raises_on_overflow(self):
        tracer = Tracer(limit=2, strict=True)
        tracer.emit(0.0, "t", "s")
        tracer.emit(1.0, "t", "s")
        with pytest.raises(SimulationError, match="2-event limit"):
            tracer.emit(2.0, "overflowing", "s")

    def test_strict_overflow_preserves_existing_events(self):
        tracer = Tracer(limit=2, strict=True)
        tracer.emit(0.0, "t", "s", "0")
        tracer.emit(1.0, "t", "s", "1")
        with pytest.raises(SimulationError):
            tracer.emit(2.0, "t", "s", "2")
        assert [event.detail for event in tracer] == ["0", "1"]
        assert tracer.dropped_count == 0

    def test_strict_under_limit_is_transparent(self):
        tracer = Tracer(limit=100, strict=True)
        for i in range(50):
            tracer.emit(float(i), "t", "s")
        assert len(tracer) == 50
        assert tracer.dropped_count == 0

    def test_disabled_strict_tracer_never_raises(self):
        tracer = Tracer(enabled=False, limit=1, strict=True)
        for i in range(10):
            tracer.emit(float(i), "t", "s")
        assert len(tracer) == 0
