"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.at(2.0, lambda: fired.append("b"))
        engine.at(1.0, lambda: fired.append("a"))
        engine.at(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_fire_in_scheduling_order(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.at(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_after_is_relative(self):
        engine = Engine()
        times = []
        engine.after(1.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.0]

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            times.append(engine.now)
            engine.after(0.5, lambda: times.append(engine.now))

        engine.at(1.0, first)
        engine.run()
        assert times == [1.0, 1.5]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.at(1.0, lambda: engine.at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.after(-1.0, lambda: None)

    def test_run_until_horizon(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: fired.append(1))
        engine.at(5.0, lambda: fired.append(5))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0
        assert engine.pending == 1
        engine.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        engine = Engine()
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_max_events_guard(self):
        engine = Engine()

        def forever():
            engine.after(0.1, forever)

        engine.after(0.1, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestProcesses:
    def test_generator_process_advances_time(self):
        engine = Engine()
        log = []

        def process():
            log.append(("start", engine.now))
            yield 1.0
            log.append(("mid", engine.now))
            yield 2.0
            log.append(("end", engine.now))

        engine.spawn(process())
        engine.run()
        assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_process_waits_on_signal(self):
        engine = Engine()
        signal = engine.signal("ready")
        log = []

        def waiter():
            yield signal
            log.append(engine.now)

        engine.spawn(waiter())
        assert signal.waiting == 1
        engine.at(5.0, signal.fire)
        engine.run()
        assert log == [5.0]
        assert signal.fire_count == 1

    def test_signal_broadcasts(self):
        engine = Engine()
        signal = engine.signal()
        woken = []

        def waiter(name):
            yield signal
            woken.append(name)

        engine.spawn(waiter("a"))
        engine.spawn(waiter("b"))
        assert signal.fire() == 2
        assert sorted(woken) == ["a", "b"]

    def test_negative_yield_rejected(self):
        engine = Engine()

        def bad():
            yield -1.0

        with pytest.raises(SimulationError):
            engine.spawn(bad())

    def test_counters(self):
        engine = Engine()

        def process():
            yield 1.0

        engine.spawn(process())
        engine.run()
        assert engine.processes_spawned == 1
        assert engine.events_executed >= 1


class TestDeterminism:
    """Regression guard for the tie-break sequence number.

    Fault scheduling keys off operation order, so two runs of the same
    spawned processes must execute the same events in the same order —
    including events scheduled for the exact same instant.
    """

    @staticmethod
    def _run_once():
        engine = Engine()
        order = []

        def process(name, delays):
            for delay in delays:
                order.append((engine.now, name))
                yield delay
            order.append((engine.now, name))

        engine.spawn(process("a", [0.5, 0.25, 0.25]))
        engine.spawn(process("b", [0.25, 0.25, 0.5]))
        engine.spawn(process("c", [1.0, 0.0, 0.0]))
        engine.at(0.5, lambda: order.append((engine.now, "timer")))
        final = engine.run()
        return engine.events_executed, final, order

    def test_two_runs_identical_events_and_order(self):
        first = self._run_once()
        second = self._run_once()
        assert first[0] == second[0]  # events_executed
        assert first == second

    def test_equal_time_events_fire_in_scheduling_order(self):
        engine = Engine()
        fired = []
        for name in ("first", "second", "third"):
            engine.at(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_zero_delay_wakeups_preserve_spawn_order(self):
        engine = Engine()
        fired = []

        def process(name):
            yield 0.0
            fired.append(name)

        for name in ("x", "y", "z"):
            engine.spawn(process(name))
        engine.run()
        assert fired == ["x", "y", "z"]
