"""CI/tooling regressions: benchmark smoke mode, markers, lint config.

The benchmark smoke job is the "benches can't silently rot" guard: it
executes every ``benchmarks/bench_*.py`` end to end with tiny workloads
in a subprocess, exactly as CI would.  The other tests pin the pytest
marker registry, the ruff configuration, the experiment-matrix smoke
entry points (``repro expt``, ``scripts/check.sh``), and the rule that
no ``*.smoke.json`` scratch artifact is ever committed.
"""

import fnmatch
import json
import os
import re
import subprocess
import sys
import tomllib
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Required keys of a BENCH_PERF.json scale point (ScaleResult.to_dict).
BENCH_PERF_POINT_KEYS = {
    "name", "streams", "blocks_per_stream", "drive", "arrivals", "seed",
    "wall_time_s", "rounds", "blocks_delivered", "misses",
    "blocks_per_second", "streams_per_second",
}


def _run_pytest(args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "pytest", *args, "-p", "no:cacheprovider"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


class TestBenchmarkSmoke:
    def test_smoke_mode_runs_every_bench(self):
        result = _run_pytest(
            ["benchmarks", "--smoke", "--benchmark-disable"]
        )
        output = result.stdout + result.stderr
        assert result.returncode == 0, output
        assert "passed" in output
        # Every benchmark module was collected (none silently skipped).
        collected = _run_pytest(
            ["benchmarks", "--smoke", "--collect-only", "-q",
             "--benchmark-disable"]
        )
        bench_files = sorted(
            path.name for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for name in bench_files:
            assert name in collected.stdout, (
                f"{name} not collected by the smoke job"
            )

    def test_smoke_run_emits_observability_snapshot(self):
        result = _run_pytest(
            ["benchmarks/bench_micro_ops.py", "--smoke",
             "--benchmark-disable"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "observability snapshot" in result.stdout
        assert '"metrics"' in result.stdout


class TestBenchPerfSchema:
    @staticmethod
    def _validate_record(record):
        assert record["benchmark"] == "perf_scale"
        assert record["schema_version"] == 1
        assert record["mode"] in ("full", "smoke")
        assert record["points"], "no scale points recorded"
        for point in record["points"]:
            assert BENCH_PERF_POINT_KEYS <= set(point), point
            assert point["wall_time_s"] >= 0
            assert point["blocks_delivered"] == (
                point["streams"] * point["blocks_per_stream"]
            )
        sweep = record["sweep"]
        assert sweep["workers"] >= 1
        for row in sweep["results"]:
            assert BENCH_PERF_POINT_KEYS <= set(row), row
        compare = record["server_compare"]
        assert compare["batched_wins"] is True
        assert compare["batched"]["continuous"] > (
            compare["per_request"]["continuous"]
        )
        assert compare["sessions"] >= compare["strands"] >= 1
        assert compare["wall_time_s"] >= 0
        cluster = record["cluster_scale"]
        assert {
            "nodes", "sessions", "titles", "scale", "bounds",
            "failover", "all_continuous", "within_bounds",
        } <= set(cluster), cluster
        assert cluster["all_continuous"] is True
        assert cluster["within_bounds"] is True
        assert cluster["scale"]["admitted"] == (
            cluster["scale"]["continuous"]
        )
        assert cluster["scale"]["admitted"] <= (
            cluster["bounds"]["full_catalog"]
        )
        assert cluster["failover"]["clean_ratio"] > 0.9
        if record["mode"] == "full":
            # The ISSUE acceptance scale: 1000+ sharded sessions.
            assert cluster["scale"]["admitted"] >= 1000
        overhead = record["obs_overhead"]
        assert {
            "streams", "blocks_per_stream", "repeats", "wall_off_s",
            "wall_obs_s", "ratio", "spans", "spans_dropped",
            "budget_ratio", "within_budget",
        } <= set(overhead), overhead
        assert overhead["spans"] > 0
        assert overhead["ratio"] > 0
        if record["mode"] == "full":
            # The tracing acceptance budget only binds at full scale;
            # smoke walls are sub-millisecond noise.
            assert overhead["within_budget"] is True, overhead
        from repro.obs import PHASES

        profile = record["profile"]
        assert {
            "params", "phases", "top", "total_cost_s", "total_ops",
            "per_stream", "per_drive", "per_node", "checkpoints",
            "rounds", "blocks_delivered", "misses",
        } <= set(profile), profile
        assert set(profile["phases"]) == set(PHASES)
        share_sum = sum(
            phase["share"] for phase in profile["phases"].values()
        )
        assert abs(share_sum - 1.0) <= 1e-9, share_sum
        assert profile["total_ops"] > 0
        assert profile["checkpoints"] >= 1
        assert profile["blocks_delivered"] == (
            profile["params"]["streams"]
            * profile["params"]["blocks_per_stream"]
        )
        top = profile["top"]
        assert len(top) >= 3, "cost-center ranking is degenerate"
        costs = [entry["cost_s"] for entry in top]
        assert costs == sorted(costs, reverse=True), (
            "cost centers must be ranked by descending cost"
        )
        if record["mode"] == "full":
            # The acceptance scale point: the n=1000 profile.
            assert profile["params"]["streams"] >= 1000

    def test_smoke_run_emits_schema_valid_bench_perf_json(self):
        result = _run_pytest(
            ["benchmarks/bench_perf_scale.py", "--smoke",
             "--benchmark-disable"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        smoke_path = ROOT / "BENCH_PERF.smoke.json"
        assert smoke_path.exists(), (
            "bench_perf_scale --smoke did not write BENCH_PERF.smoke.json"
        )
        record = json.loads(smoke_path.read_text())
        self._validate_record(record)
        assert record["mode"] == "smoke"
        # The bench emits the same trajectory as an expt-matrix manifest
        # so the scale points can feed `repro expt gate`/`diff`.
        from repro.expt import validate_manifest

        matrix_path = ROOT / "BENCH_PERF.matrix.smoke.json"
        assert matrix_path.exists(), (
            "bench_perf_scale --smoke did not write "
            "BENCH_PERF.matrix.smoke.json"
        )
        manifest = validate_manifest(
            json.loads(matrix_path.read_text())
        )
        assert manifest["name"] == "bench-perf-scale-smoke"
        bench_names = {p["name"] for p in record["points"]}
        assert bench_names <= set(manifest["cells"])

    def test_committed_trajectory_is_schema_valid(self):
        path = ROOT / "BENCH_PERF.json"
        assert path.exists(), (
            "BENCH_PERF.json missing; regenerate with "
            "`pytest benchmarks/bench_perf_scale.py --benchmark-disable`"
        )
        record = json.loads(path.read_text())
        self._validate_record(record)
        assert record["mode"] == "full"
        streams = [p["streams"] for p in record["points"]]
        assert streams == sorted(streams)
        assert streams[-1] >= 1000, (
            "full trajectory must include the 1000-stream point"
        )

    def test_committed_matrix_manifest_is_schema_valid(self):
        from repro.expt import validate_manifest

        path = ROOT / "BENCH_PERF.matrix.json"
        assert path.exists(), (
            "BENCH_PERF.matrix.json missing; regenerate with "
            "`pytest benchmarks/bench_perf_scale.py --benchmark-disable`"
        )
        manifest = validate_manifest(json.loads(path.read_text()))
        assert manifest["name"] == "bench-perf-scale-full"
        assert any(
            record["spec"].get("streams") == 1000
            for record in manifest["cells"].values()
        ), "full matrix manifest must carry the 1000-stream point"


class TestMarkers:
    def test_golden_marker_selects_golden_tests(self):
        result = _run_pytest(
            ["tests/obs", "-m", "golden", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_golden_traces" in result.stdout

    def test_markers_are_registered(self):
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        markers = config["tool"]["pytest"]["ini_options"]["markers"]
        for name in (
            "chaos", "cluster", "golden", "matrix", "perf", "profile",
            "server", "trace",
        ):
            assert any(m.startswith(f"{name}:") for m in markers), name

    def test_every_used_marker_is_declared(self):
        # The drift guard: applying an unregistered mark anywhere in
        # the tree would otherwise only surface as a warning.
        builtin = {
            "parametrize", "skip", "skipif", "xfail", "usefixtures",
            "filterwarnings",
        }
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        declared = {
            m.split(":", 1)[0]
            for m in config["tool"]["pytest"]["ini_options"]["markers"]
        }
        pattern = re.compile(r"pytest\.mark\.([A-Za-z_]\w*)")
        used = {}
        for directory in ("tests", "benchmarks"):
            for path in (ROOT / directory).rglob("*.py"):
                for name in pattern.findall(path.read_text()):
                    used.setdefault(name, path.relative_to(ROOT))
        undeclared = {
            name: str(path)
            for name, path in sorted(used.items())
            if name not in builtin and name not in declared
        }
        assert not undeclared, (
            f"markers used but not declared in pyproject: {undeclared}"
        )

    def test_matrix_marker_selects_matrix_tests(self):
        result = _run_pytest(
            ["tests/expt", "-m", "matrix", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_matrix_e2e" in result.stdout

    def test_server_marker_selects_server_tests(self):
        result = _run_pytest(
            ["tests/server", "-m", "server", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_media_server" in result.stdout
        assert "test_batch_admission" in result.stdout
        assert "test_cache_equivalence" in result.stdout

    def test_trace_marker_selects_tracing_tests(self):
        result = _run_pytest(
            ["tests", "-m", "trace", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_tracing" in result.stdout
        assert "test_slo" in result.stdout
        assert "test_trace_integration" in result.stdout

    def test_cluster_marker_selects_cluster_tests(self):
        result = _run_pytest(
            ["tests/cluster", "-m", "cluster", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_router" in result.stdout
        assert "test_failover" in result.stdout
        assert "test_bounds" in result.stdout

    def test_perf_marker_selects_perf_tests(self):
        result = _run_pytest(
            ["tests/perf", "-m", "perf", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_operation_counts" in result.stdout
        assert "test_sweep" in result.stdout

    def test_profile_marker_selects_profiler_tests(self):
        result = _run_pytest(
            ["tests/obs", "-m", "profile", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_profiling" in result.stdout


class TestServeSmoke:
    def test_serve_smoke_emits_valid_obs_snapshot(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--smoke"],
            cwd=ROOT, capture_output=True, text=True, env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        snapshot = json.loads(result.stdout)
        counters = snapshot["metrics"]["counters"]
        assert counters["server.batches"] > 0
        assert counters["server.sessions_opened"] > 0
        assert counters["cache.hits"] > 0
        assert snapshot["audit"], "no admission audit entries"


class TestPublicSurface:
    #: The documented top-level surface (docs/API.md): message types,
    #: the two deployment front ends, and the library submodules.
    DOCUMENTED_ALL = [
        "ClusterServeResult",
        "HandoffRecord",
        "Media",
        "MediaCluster",
        "MediaServer",
        "NodeServeResult",
        "NodeStatus",
        "OpenSessionRequest",
        "OpenSessionResponse",
        "PauseRequest",
        "PlayRequest",
        "RejectReason",
        "ResumeRequest",
        "ServeResult",
        "SessionState",
        "SessionStatus",
        "StopRequest",
        "analysis",
        "api",
        "cluster",
        "config",
        "core",
        "disk",
        "errors",
        "faults",
        "fs",
        "media",
        "obs",
        "rope",
        "server",
        "service",
        "sim",
        "units",
        "workload",
        "__version__",
    ]

    def test_facade_all_matches_documented_surface_exactly(self):
        import repro

        assert list(repro.__all__) == self.DOCUMENTED_ALL

    def test_every_all_entry_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_no_deprecation_shim_remains(self):
        import repro

        assert not hasattr(repro, "__getattr__"), (
            "the PEP 562 alias shim was removed in 2.0; nothing should "
            "reintroduce module-level __getattr__"
        )


class TestLintConfig:
    def test_ruff_config_present_and_scoped(self):
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        ruff = config["tool"]["ruff"]
        assert ruff["target-version"] == "py39"
        select = ruff["lint"]["select"]
        assert "F" in select  # pyflakes family is the baseline

    def test_facade_reexports_are_lint_exempt(self):
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        ignores = config["tool"]["ruff"]["lint"]["per-file-ignores"]
        assert "F401" in ignores["src/repro/__init__.py"]


class TestNoTrackedScratchArtifacts:
    def test_no_smoke_json_is_committed(self):
        # Smoke artifacts (BENCH_PERF.smoke.json and friends) are CI
        # scratch files; .gitignore covers `*.smoke.json` and nothing
        # matching it may ever be tracked.
        result = subprocess.run(
            ["git", "ls-files"],
            cwd=ROOT, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        tracked = result.stdout.splitlines()
        offenders = [
            path for path in tracked
            if fnmatch.fnmatch(Path(path).name, "*.smoke.json")
        ]
        assert not offenders, (
            f"smoke scratch artifacts are tracked: {offenders}; "
            "git rm them (they are regenerated by every smoke run)"
        )

    def test_gitignore_covers_smoke_and_results(self):
        ignored = (ROOT / ".gitignore").read_text().splitlines()
        assert "*.smoke.json" in ignored
        assert "results/" in ignored


class TestExptSmoke:
    def test_expt_smoke_run_completes_and_manifest_validates(
        self, tmp_path
    ):
        from repro.expt import smoke_config, validate_manifest

        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        out = tmp_path / "smoke"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "expt", "run",
                "--smoke", "--out", str(out),
            ],
            cwd=ROOT, capture_output=True, text=True, env=env,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "expt run 'smoke'" in result.stdout
        manifest = validate_manifest(
            json.loads((out / "matrix.json").read_text())
        )
        assert manifest["config_hash"] == smoke_config().hash

        gate = subprocess.run(
            [
                sys.executable, "-m", "repro", "expt", "gate",
                "--manifest", str(out / "matrix.json"),
            ],
            cwd=ROOT, capture_output=True, text=True, env=env,
            timeout=120,
        )
        assert gate.returncode == 0, gate.stdout + gate.stderr
        assert "PASS" in gate.stdout


class TestCheckScript:
    def test_check_script_exists_and_is_executable(self):
        script = ROOT / "scripts" / "check.sh"
        assert script.exists(), "scripts/check.sh missing"
        assert os.access(script, os.X_OK), (
            "scripts/check.sh is not executable"
        )

    def test_check_script_runs_every_gate(self):
        # Lint, tier-1 tests, the smoke matrix gate, and the cluster
        # smoke scenario must all appear; a check.sh that quietly drops
        # one is a CI hole.
        text = (ROOT / "scripts" / "check.sh").read_text()
        assert "ruff" in text
        assert "pytest" in text
        assert "expt run --smoke" in text
        assert "expt gate" in text
        assert "cluster --smoke" in text
        assert "profile --smoke" in text
        assert "set -euo pipefail" in text
