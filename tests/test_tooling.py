"""CI/tooling regressions: benchmark smoke mode, markers, lint config.

The benchmark smoke job is the "benches can't silently rot" guard: it
executes every ``benchmarks/bench_*.py`` end to end with tiny workloads
in a subprocess, exactly as CI would.  The other tests pin the pytest
marker registry and the ruff configuration so tooling entry points
don't quietly disappear.
"""

import os
import subprocess
import sys
import tomllib
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run_pytest(args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "pytest", *args, "-p", "no:cacheprovider"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


class TestBenchmarkSmoke:
    def test_smoke_mode_runs_every_bench(self):
        result = _run_pytest(
            ["benchmarks", "--smoke", "--benchmark-disable"]
        )
        output = result.stdout + result.stderr
        assert result.returncode == 0, output
        assert "passed" in output
        # Every benchmark module was collected (none silently skipped).
        collected = _run_pytest(
            ["benchmarks", "--smoke", "--collect-only", "-q",
             "--benchmark-disable"]
        )
        bench_files = sorted(
            path.name for path in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for name in bench_files:
            assert name in collected.stdout, (
                f"{name} not collected by the smoke job"
            )

    def test_smoke_run_emits_observability_snapshot(self):
        result = _run_pytest(
            ["benchmarks/bench_micro_ops.py", "--smoke",
             "--benchmark-disable"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "observability snapshot" in result.stdout
        assert '"metrics"' in result.stdout


class TestMarkers:
    def test_golden_marker_selects_golden_tests(self):
        result = _run_pytest(
            ["tests/obs", "-m", "golden", "--collect-only", "-q"]
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "test_golden_traces" in result.stdout

    def test_markers_are_registered(self):
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        markers = config["tool"]["pytest"]["ini_options"]["markers"]
        for name in ("chaos", "golden"):
            assert any(m.startswith(f"{name}:") for m in markers), name


class TestLintConfig:
    def test_ruff_config_present_and_scoped(self):
        config = tomllib.loads((ROOT / "pyproject.toml").read_text())
        ruff = config["tool"]["ruff"]
        assert ruff["target-version"] == "py39"
        select = ruff["lint"]["select"]
        assert "F" in select  # pyflakes family is the baseline
