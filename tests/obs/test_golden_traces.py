"""Golden-trace regressions: canonical scenarios vs. committed snapshots.

The observability snapshot of a fixed-seed scenario is a pure function
of the code — any behavioural drift in the disk model, the round loop,
fault recovery, or the admission arithmetic shows up as a byte diff
against the files under ``tests/golden/``.  Regenerate intentionally
with ``pytest --regen-golden`` (the diff then goes through review).
"""

import json

import pytest

from repro.obs import Observability
from repro.obs.scenarios import run_fault_scenario, run_steady_scenario

pytestmark = pytest.mark.golden


class TestSteadyGolden:
    def test_snapshot_matches_golden(self, golden):
        run = run_steady_scenario()
        golden("steady_snapshot.json", run.snapshot())

    def test_rerun_is_byte_identical(self):
        assert run_steady_scenario().snapshot() == (
            run_steady_scenario().snapshot()
        )

    def test_steady_state_is_clean(self):
        run = run_steady_scenario()
        snapshot = json.loads(run.snapshot())
        assert run.result.total_misses == 0
        assert snapshot["metrics"]["counters"].get("fault.skips", 0) == 0
        for summary in snapshot["timeline"].values():
            assert summary["conserved"]
        run.obs.timeline.validate()


class TestFaultGolden:
    def test_snapshot_matches_golden(self, golden):
        run = run_fault_scenario()
        golden("fault_snapshot.json", run.snapshot())

    def test_rerun_is_byte_identical(self):
        assert run_fault_scenario().snapshot() == (
            run_fault_scenario().snapshot()
        )

    def test_fault_counters_cross_check_continuity_metrics(self):
        """The retry/skip/degrade telemetry agrees with the per-request
        ContinuityMetrics the service loop scored independently."""
        run = run_fault_scenario()
        counters = json.loads(run.snapshot())["metrics"]["counters"]
        assert counters["fault.skips"] == run.result.total_skips > 0
        # Transients were retried and recovered (the degrade sequence).
        assert counters["fault.retries"] > 0
        assert counters["fault.recovered_reads"] > 0
        # Every injected fault (no head failures here) resolves into
        # exactly one decision: a retry or a skip.
        assert counters["fault.injected"] == (
            counters["fault.retries"] + counters["fault.skips"]
        )

    def test_timeline_skips_match_metric_skips(self):
        run = run_fault_scenario()
        timeline = run.obs.timeline
        timeline.validate()
        skipped = sum(
            timeline.stage_counts(sid).get("skipped", 0)
            for sid in timeline.sessions()
        )
        assert skipped == run.result.total_skips
        for sid in timeline.sessions():
            assert timeline.conservation_holds(sid)

    def test_diff_between_scenarios_localizes_fault_counters(self):
        """Snapshot diff pinpoints what fault injection changed."""
        steady = run_steady_scenario(seconds=6.0, requests=1).snapshot()
        faulted = run_fault_scenario().snapshot()
        diff = Observability.diff(steady, faulted)
        assert any(
            path.startswith("metrics.counters.fault.") for path in diff
        )
