"""Unit tests for the causal span tracer.

Everything here pins the determinism contract: trace/span ids derive
from seed + session key + creation sequence (never wall clock), parent
context crosses boundaries as a plain wire dict, and overflow behaves
exactly like the simulation tracer (drop-newest + counter, or raise in
strict mode).
"""

import json
import zlib

import pytest

from repro.errors import ParameterError, SimulationError
from repro.obs import Span, SpanTracer

pytestmark = pytest.mark.trace


class TestIdentity:
    def test_trace_id_is_crc32_of_seed_and_key(self):
        tracer = SpanTracer(seed=42)
        expected = format(zlib.crc32(b"42/session-1"), "08x")
        assert tracer.trace_id_for("session-1") == expected

    def test_same_seed_same_ids(self):
        a, b = SpanTracer(seed=7), SpanTracer(seed=7)
        sa = a.start_span("server.request", 0.0, session="s-1")
        sb = b.start_span("server.request", 0.0, session="s-1")
        assert sa.span_id == sb.span_id
        assert sa.trace_id == sb.trace_id

    def test_different_seeds_different_trace_ids(self):
        assert SpanTracer(seed=0).trace_id_for("s") != (
            SpanTracer(seed=1).trace_id_for("s")
        )

    def test_span_ids_append_creation_sequence(self):
        tracer = SpanTracer(seed=0)
        first = tracer.start_span("a", 0.0, session="s")
        second = tracer.start_span("b", 1.0, session="s")
        trace = tracer.trace_id_for("s")
        assert first.span_id == f"{trace}:000001"
        assert second.span_id == f"{trace}:000002"

    def test_root_without_session_keys_trace_on_name(self):
        tracer = SpanTracer(seed=0)
        span = tracer.start_span("server.batch", 0.0)
        assert span.trace_id == tracer.trace_id_for("server.batch")
        assert span.session is None


class TestParenting:
    def test_child_of_live_span_inherits_trace_and_session(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("server.request", 0.0, session="s-1")
        child = tracer.start_span("server.admit", 0.5, parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child.session == "s-1"

    def test_wire_dict_crosses_a_boundary(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("server.request", 0.0, session="s-1")
        wire = root.wire(1.25)
        assert wire == {
            "trace_id": root.trace_id,
            "span_id": root.span_id,
            "time": 1.25,
            "session": "s-1",
        }
        # The wire form is marshallable like any RPC argument.
        reparsed = json.loads(json.dumps(wire))
        child = tracer.start_span("msm.admit", 1.5, parent=reparsed)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child.session == "s-1"
        assert tracer.trace_is_connected(root.trace_id)

    def test_connectivity_checks_single_root_and_parents(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("a", 0.0, session="s")
        tracer.start_span("b", 0.1, parent=root)
        assert tracer.trace_is_connected(root.trace_id)
        # A second root in the same trace breaks the tree shape.
        tracer.start_span("c", 0.2, session="s")
        assert not tracer.trace_is_connected(root.trace_id)
        assert not tracer.trace_is_connected("not-a-trace")

    def test_children_and_roots_queries(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("a", 0.0, session="s")
        kids = [
            tracer.start_span("b", 0.1, parent=root),
            tracer.start_span("c", 0.2, parent=root),
        ]
        assert tracer.children_of(root) == kids
        assert tracer.roots_of(root.trace_id) == [root]


class TestLifecycle:
    def test_end_span_sets_end_status_and_latest_end(self):
        tracer = SpanTracer(seed=0)
        span = tracer.start_span("a", 1.0, session="s")
        tracer.end_span(span, 3.5, status="degraded")
        assert span.end == 3.5
        assert span.status == "degraded"
        assert span.duration == 2.5
        assert tracer.latest_end(span.trace_id) == 3.5

    def test_end_span_tolerates_none_and_already_closed(self):
        tracer = SpanTracer(seed=0)
        tracer.end_span(None, 1.0)  # no-op
        span = tracer.start_span("a", 0.0, session="s")
        tracer.end_span(span, 1.0)
        tracer.end_span(span, 9.0, status="late")  # ignored
        assert span.end == 1.0
        assert span.status == "ok"

    def test_open_span_has_zero_duration(self):
        tracer = SpanTracer(seed=0)
        span = tracer.start_span("a", 2.0, session="s")
        assert span.duration == 0.0

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.start_span("a", 0.0, session="s") is None
        assert len(tracer) == 0


class TestOverflow:
    def test_drops_newest_and_counts(self):
        tracer = SpanTracer(seed=0, limit=2)
        a = tracer.start_span("a", 0.0, session="s")
        b = tracer.start_span("b", 0.1, parent=a)
        dropped = tracer.start_span("c", 0.2, parent=b)
        assert dropped is None
        assert len(tracer) == 2
        assert tracer.dropped_count == 1
        # Recorded parent chains never dangle.
        assert tracer.trace_is_connected(a.trace_id)

    def test_strict_mode_raises(self):
        tracer = SpanTracer(seed=0, limit=1, strict=True)
        tracer.start_span("a", 0.0, session="s")
        with pytest.raises(SimulationError):
            tracer.start_span("b", 0.1, session="s")

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SpanTracer(limit=0)
        with pytest.raises(ParameterError):
            SpanTracer(block_keep_first=-1)
        with pytest.raises(ParameterError):
            SpanTracer(block_every_kth=0)


class TestBindings:
    def test_bind_context_for_unbind(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("server.request", 0.0, session="s-1")
        tracer.bind("s-1", root)
        assert tracer.context_for("s-1") is root
        tracer.unbind("s-1")
        assert tracer.context_for("s-1") is None
        tracer.unbind("s-1")  # no-op when absent


class TestSampling:
    def test_unsampled_traces_every_block(self):
        tracer = SpanTracer(seed=0)
        assert all(tracer.samples_block(i) for i in range(100))

    def test_keep_first_and_every_kth(self):
        tracer = SpanTracer(
            seed=0, block_keep_first=4, block_every_kth=16
        )
        sampled = [i for i in range(64) if tracer.samples_block(i)]
        assert sampled == [0, 1, 2, 3, 16, 32, 48]

    def test_keep_first_only(self):
        tracer = SpanTracer(seed=0, block_keep_first=2)
        assert [i for i in range(8) if tracer.samples_block(i)] == [0, 1]


class TestSummaryAndExport:
    def _small_trace(self):
        tracer = SpanTracer(seed=0)
        root = tracer.start_span("server.request", 0.0, session="s-1")
        child = tracer.start_span(
            "disk.access", 0.25, parent=root, attrs={"slot": 9}
        )
        tracer.end_span(child, 0.75)
        tracer.end_span(root, 1.0)
        return tracer, root, child

    def test_summary_dict_shape(self):
        tracer, root, _child = self._small_trace()
        open_span = tracer.start_span("dangling", 2.0, session="s-2")
        assert open_span is not None
        summary = tracer.summary_dict()
        assert summary["count"] == 3
        assert summary["open"] == 1
        assert summary["orphans"] == 0
        assert summary["dropped"] == 0
        assert summary["traces"] == 2
        assert summary["by_name"] == {
            "dangling": 1, "disk.access": 1, "server.request": 1,
        }

    def test_chrome_trace_shape(self):
        tracer, root, child = self._small_trace()
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {
            "clock": "simulated", "seed": 0, "spans": 2, "dropped": 0,
        }
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["args"] == {"name": "s-1"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "server.request", "disk.access",
        ]
        disk = complete[1]
        # Microsecond timestamps on the simulated clock.
        assert disk["ts"] == 0.25 * 1e6
        assert disk["dur"] == 0.5 * 1e6
        assert disk["cat"] == "disk"
        assert disk["args"]["slot"] == 9
        assert disk["args"]["parent_id"] == root.span_id

    def test_export_is_deterministic(self):
        docs = []
        for _ in range(2):
            tracer, _root, _child = self._small_trace()
            docs.append(
                json.dumps(tracer.to_chrome_trace(), sort_keys=True)
            )
        assert docs[0] == docs[1]

    def test_span_to_dict_roundtrips_json(self):
        _tracer, root, _child = self._small_trace()
        record = json.loads(json.dumps(root.to_dict()))
        assert record["name"] == "server.request"
        assert record["parent_id"] is None
        assert record["status"] == "ok"

    def test_spans_filters(self):
        tracer, root, child = self._small_trace()
        assert tracer.spans(name="disk.access") == [child]
        assert tracer.spans(trace_id=root.trace_id) == [root, child]
        assert tracer.spans(session="s-1") == [root, child]
        assert tracer.span(child.span_id) is child
        assert tracer.span("missing") is None
        assert isinstance(Span.wire(root, 0.0), dict)
