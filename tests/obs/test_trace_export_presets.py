"""Trace-export coverage across every canonical scenario preset.

Each of the four presets (steady, fault, server-steady, server-hot)
must export a Perfetto-loadable Chrome trace that is byte-identical
across two same-seed runs and differs once the seed changes — the
determinism contract the golden-trace workflow and docs/OBSERVABILITY
rely on.
"""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.trace

PRESETS = ("steady", "fault", "server-steady", "server-hot")


def _export(tmp_path, scenario, seed, tag):
    target = tmp_path / f"{scenario}-{tag}.json"
    code = main([
        "trace-export", "--scenario", scenario,
        "--seed", str(seed), "--out", str(target),
    ])
    assert code == 0
    return target


@pytest.mark.parametrize("scenario", PRESETS)
class TestPreset:
    def test_export_is_perfetto_loadable(self, scenario, tmp_path):
        target = _export(tmp_path, scenario, seed=0, tag="load")
        document = json.loads(target.read_text())
        # The keys Perfetto/chrome://tracing require to render.
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events, f"{scenario} exported an empty trace"
        for event in events:
            assert {"ph", "pid", "tid", "name"} <= set(event)
        # Complete events carry timestamps and durations.
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, f"{scenario} exported no span events"
        assert all("ts" in e and "dur" in e for e in spans)

    def test_same_seed_exports_identical_bytes(self, scenario, tmp_path):
        first = _export(tmp_path, scenario, seed=7, tag="a")
        second = _export(tmp_path, scenario, seed=7, tag="b")
        assert first.read_bytes() == second.read_bytes()

    def test_different_seed_changes_the_trace(self, scenario, tmp_path):
        base = _export(tmp_path, scenario, seed=0, tag="s0")
        other = _export(tmp_path, scenario, seed=1, tag="s1")
        assert base.read_bytes() != other.read_bytes()


def test_presets_are_distinct_workloads(tmp_path):
    # The four presets must not collapse into the same trace.
    payloads = {
        scenario: _export(tmp_path, scenario, 0, "x").read_bytes()
        for scenario in PRESETS
    }
    assert len(set(payloads.values())) == len(PRESETS)
