"""Admission-audit tests: every logged decision is arithmetically honest.

The audit log's value is that a decision can be *recomputed*: each entry
carries its governing inequality as a Python expression plus the exact
operand values, so ``entry.evaluate()`` must reproduce ``satisfied`` —
False for every reject, True for every admit — across randomized
workloads, not just the testbed profile.
"""

import dataclasses
import re

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import admission as adm
from repro.core.symbols import BlockModel, DiskParameters
from repro.disk import build_drive
from repro.errors import AdmissionRejected
from repro.fs import MultimediaStorageManager
from repro.obs import AdmissionAuditLog, Observability

disks = st.builds(
    lambda rate, track, avg_extra, max_extra: DiskParameters(
        transfer_rate=rate,
        seek_track=track,
        seek_avg=track + avg_extra,
        seek_max=track + avg_extra + max_extra,
    ),
    rate=st.floats(min_value=1e6, max_value=1e9),
    track=st.floats(min_value=1e-4, max_value=0.005),
    avg_extra=st.floats(min_value=1e-4, max_value=0.02),
    max_extra=st.floats(min_value=1e-4, max_value=0.05),
)

blocks = st.builds(
    BlockModel,
    unit_rate=st.floats(min_value=5.0, max_value=60.0),
    unit_size=st.floats(min_value=1e3, max_value=1e6),
    granularity=st.integers(min_value=1, max_value=16),
)


def _drive_to_rejection(controller, descriptor, cap=200):
    """Admit until the controller rejects (or the cap trips)."""
    for _ in range(cap):
        try:
            controller.admit(descriptor)
        except AdmissionRejected:
            return True
    return False


class TestAuditedController:
    @settings(deadline=None, max_examples=40)
    @given(disk=disks, block=blocks)
    def test_every_entry_recomputes_its_decision(self, disk, block):
        descriptor = adm.RequestDescriptor(
            block=block, scattering_avg=disk.seek_avg
        )
        capacity = adm.n_max(
            adm.service_parameters([descriptor], disk)
        )
        assume(0 < capacity <= 150)
        controller = adm.AdmissionController(disk)
        controller.audit = AdmissionAuditLog()
        rejected = _drive_to_rejection(controller, descriptor)
        log = controller.audit
        assert rejected
        assert len(log.rejects()) >= 1
        assert len(log.admits()) >= 1
        for entry in log:
            assert entry.evaluate() == entry.satisfied, str(entry)
        for entry in log.rejects():
            assert entry.evaluate() is False, (
                f"logged reject re-evaluates true: {entry}"
            )

    @settings(deadline=None, max_examples=40)
    @given(disk=disks, block=blocks)
    def test_reject_shows_which_constraint_failed(self, disk, block):
        descriptor = adm.RequestDescriptor(
            block=block, scattering_avg=disk.seek_avg
        )
        capacity = adm.n_max(
            adm.service_parameters([descriptor], disk)
        )
        assume(0 < capacity <= 150)
        controller = adm.AdmissionController(disk)
        controller.audit = AdmissionAuditLog()
        assert _drive_to_rejection(controller, descriptor)
        reject = controller.audit.rejects()[0]
        # Every identifier the inequality references is a logged operand,
        # so the entry is self-contained evidence of the failure.
        logged = {key for key, _ in reject.operands}
        for name in re.findall(r"[a-z_]+", reject.constraint):
            assert name in logged, (
                f"constraint references {name!r} but it was not logged: "
                f"{reject}"
            )

    def test_unaudited_controller_still_works(self):
        """audit=None stays the default and costs nothing."""
        drive = build_drive()
        controller = adm.AdmissionController(drive.parameters())
        assert controller.audit is None
        descriptor = adm.RequestDescriptor(
            block=BlockModel(
                unit_rate=30.0, unit_size=64e3, granularity=4
            ),
            scattering_avg=drive.parameters().seek_avg,
        )
        decision = controller.admit(descriptor)
        assert decision.request_id is not None


def _observed_msm(heads=1):
    from repro.config import TESTBED_1991

    profile = TESTBED_1991
    obs = Observability()
    drive = build_drive()
    msm = MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
        obs=obs,
    )
    if heads != 1:
        msm.disk_params = dataclasses.replace(
            msm.disk_params, heads=heads
        )
        msm.admission.disk = msm.disk_params
    return msm, obs


class TestRevalidateAudit:
    def test_revalidate_emits_entry_with_shrunk_n_max(self):
        msm, obs = _observed_msm(heads=4)
        before = msm.revalidate_admission(heads_lost=1)
        entries = obs.audit.revalidations()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.decision == "revalidate"
        assert entry.satisfied is True  # 3 of 4 heads survive
        assert entry.evaluate() is True
        assert entry.operand("surviving") == 3.0
        assert entry.operand("n_max") == float(before)
        assert f"n_max={before}" in entry.detail

    def test_shrunk_n_max_never_grows(self):
        msm, obs = _observed_msm(heads=4)
        baseline = msm.revalidate_admission(heads_lost=1)
        again = msm.revalidate_admission(heads_lost=1)
        assert again <= baseline
        n_maxes = [
            entry.operand("n_max")
            for entry in obs.audit.revalidations()
        ]
        assert n_maxes == sorted(n_maxes, reverse=True)

    def test_last_head_freezes_admission_and_fails_constraint(self):
        msm, obs = _observed_msm(heads=1)
        assert msm.revalidate_admission(heads_lost=1) == 0
        entry = obs.audit.revalidations()[-1]
        assert entry.satisfied is False
        assert entry.evaluate() is False  # surviving >= 1 is violated
        assert entry.operand("n_max") == 0.0
        assert msm.admission.max_k == 0
