"""Unit tests for session timelines and their lifecycle invariants."""

import pytest

from repro.errors import SimulationError
from repro.obs import BlockStage, SessionTimeline


def _healthy_block(timeline, session, index, base):
    timeline.record(base, session, index, BlockStage.ENQUEUED)
    timeline.record(base + 0.01, session, index, BlockStage.READ_START)
    timeline.record(base + 0.02, session, index, BlockStage.READ_DONE)
    timeline.record(base + 0.10, session, index, BlockStage.CONSUMED)


class TestRecording:
    def test_counts_and_sessions(self):
        timeline = SessionTimeline()
        _healthy_block(timeline, "A", 0, 0.0)
        _healthy_block(timeline, "B", 0, 0.5)
        assert timeline.sessions() == ["A", "B"]
        assert len(timeline) == 8
        assert timeline.stage_counts("A") == {
            "enqueued": 1, "read-start": 1, "read-done": 1, "consumed": 1,
        }

    def test_event_filters(self):
        timeline = SessionTimeline()
        _healthy_block(timeline, "A", 0, 0.0)
        _healthy_block(timeline, "A", 1, 0.2)
        done = timeline.events(session_id="A", stage=BlockStage.READ_DONE)
        assert [event.block_index for event in done] == [0, 1]

    def test_disabled_timeline_records_nothing(self):
        timeline = SessionTimeline(enabled=False)
        _healthy_block(timeline, "A", 0, 0.0)
        assert len(timeline) == 0
        timeline.validate()  # vacuously valid


class TestDerivedTelemetry:
    def test_read_done_times_sorted_by_block(self):
        timeline = SessionTimeline()
        # Record out of block order; arrival times come back block-ordered.
        timeline.record(0.0, "A", 1, BlockStage.ENQUEUED)
        timeline.record(0.3, "A", 1, BlockStage.READ_DONE)
        timeline.record(0.0, "A", 0, BlockStage.ENQUEUED)
        timeline.record(0.1, "A", 0, BlockStage.READ_DONE)
        assert timeline.read_done_times("A") == [0.1, 0.3]

    def test_interarrival_jitter_peak_to_peak(self):
        timeline = SessionTimeline()
        for index, when in enumerate((0.0, 0.1, 0.3, 0.4)):
            timeline.record(when, "A", index, BlockStage.ENQUEUED)
            timeline.record(when, "A", index, BlockStage.READ_DONE)
        # Gaps are 0.1, 0.2, 0.1 -> peak-to-peak 0.1.
        assert timeline.interarrival_jitter("A") == pytest.approx(0.1)

    def test_jitter_needs_three_arrivals(self):
        timeline = SessionTimeline()
        timeline.record(0.0, "A", 0, BlockStage.ENQUEUED)
        timeline.record(0.0, "A", 0, BlockStage.READ_DONE)
        assert timeline.interarrival_jitter("A") == 0.0

    def test_conservation(self):
        timeline = SessionTimeline()
        _healthy_block(timeline, "A", 0, 0.0)
        timeline.record(0.5, "A", 1, BlockStage.ENQUEUED)
        timeline.record(0.6, "A", 1, BlockStage.SKIPPED)
        assert timeline.conservation_holds("A")
        timeline.record(0.9, "A", 2, BlockStage.ENQUEUED)
        assert not timeline.conservation_holds("A")  # 2 has no terminal


class TestValidate:
    def test_healthy_timeline_validates(self):
        timeline = SessionTimeline()
        for index in range(4):
            _healthy_block(timeline, "A", index, index * 0.1)
        timeline.validate()

    def test_first_event_must_be_enqueued(self):
        timeline = SessionTimeline()
        timeline.record(0.0, "A", 0, BlockStage.READ_START)
        with pytest.raises(SimulationError, match="not enqueued"):
            timeline.validate()

    def test_time_reversal_rejected(self):
        timeline = SessionTimeline()
        timeline.record(1.0, "A", 0, BlockStage.ENQUEUED)
        timeline.record(0.5, "A", 0, BlockStage.READ_DONE)
        with pytest.raises(SimulationError, match="time reversed"):
            timeline.validate()

    def test_stage_regression_rejected(self):
        timeline = SessionTimeline()
        timeline.record(0.0, "A", 0, BlockStage.ENQUEUED)
        timeline.record(0.1, "A", 0, BlockStage.READ_DONE)
        timeline.record(0.2, "A", 0, BlockStage.READ_START)
        with pytest.raises(SimulationError, match="stage"):
            timeline.validate()

    def test_double_terminal_rejected(self):
        timeline = SessionTimeline()
        timeline.record(0.0, "A", 0, BlockStage.ENQUEUED)
        timeline.record(0.1, "A", 0, BlockStage.CONSUMED)
        timeline.record(0.1, "A", 0, BlockStage.SKIPPED)
        with pytest.raises(SimulationError, match="terminal"):
            timeline.validate()


class TestRendering:
    def test_summary_dict_is_deterministic(self):
        def build():
            timeline = SessionTimeline()
            _healthy_block(timeline, "B", 0, 0.0)
            _healthy_block(timeline, "A", 0, 0.1)
            return timeline.summary_dict()

        assert build() == build()

    def test_render_tail(self):
        timeline = SessionTimeline()
        _healthy_block(timeline, "A", 0, 0.0)
        text = timeline.render(session_id="A", last=2)
        assert "consumed" in text
        assert "enqueued" not in text  # truncated to the last 2 events
