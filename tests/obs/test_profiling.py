"""Cost-attribution profiler tests: determinism, shares, federation.

The profiler's contract has three legs the tests pin separately:

* **Determinism** — everything recorded is modeled time, so the summary
  of a fixed-seed scenario serializes byte-identically across runs, and
  checkpoint decimation is a pure function of the call sequence.
* **Attribution honesty** — phase shares always sum to 1 (cost-weighted
  when any cost was recorded, op-weighted otherwise), the taxonomy is
  closed (unknown phases raise), and rankings are fully ordered.
* **Federation equivalence** — a :class:`ScopedObservability` pairs
  every metric write into shared + local registries, so the parent
  snapshot is byte-identical to flat sharing and
  :func:`merge_snapshots` over all views reproduces the shared counters
  exactly.
"""

import json

import pytest

from repro.errors import ParameterError
from repro.obs import (
    PHASES,
    CostProfiler,
    Observability,
    ScopedObservability,
    merge_snapshots,
)
from repro.obs.registry import SEEK_TIME_BUCKETS

pytestmark = pytest.mark.profile


class TestCostProfiler:
    def test_phase_taxonomy_is_closed(self):
        profiler = CostProfiler()
        with pytest.raises(ParameterError):
            profiler.record("disk_io")

    def test_totals_and_cost_weighted_shares(self):
        profiler = CostProfiler()
        profiler.record("seek", cost=0.3, ops=3)
        profiler.record("transfer", cost=0.7, ops=3)
        profiler.record("admission_scan", ops=10)
        assert profiler.total_ops == 16
        assert profiler.total_cost == pytest.approx(1.0)
        shares = profiler.phase_shares()
        assert shares["seek"] == pytest.approx(0.3)
        assert shares["transfer"] == pytest.approx(0.7)
        assert shares["admission_scan"] == 0.0
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_ops_weighted_fallback_when_no_cost(self):
        profiler = CostProfiler()
        profiler.record("admission_scan", ops=3)
        profiler.record("deadline_ordering", ops=1)
        shares = profiler.phase_shares()
        assert shares["admission_scan"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_empty_profiler_has_zero_shares(self):
        shares = CostProfiler().phase_shares()
        assert set(shares) == set(PHASES)
        assert all(value == 0.0 for value in shares.values())

    def test_top_cost_centers_ranking_and_bounds(self):
        profiler = CostProfiler()
        profiler.record("seek", cost=0.2)
        profiler.record("transfer", cost=0.9)
        profiler.record("cache_lookup", ops=50)
        top = profiler.top_cost_centers(3)
        assert [entry["phase"] for entry in top] == [
            "transfer", "seek", "cache_lookup",
        ]
        assert len(profiler.top_cost_centers()) == len(PHASES)
        with pytest.raises(ParameterError):
            profiler.top_cost_centers(0)

    def test_disabled_profiler_records_nothing(self):
        profiler = CostProfiler(enabled=False)
        profiler.record("seek", cost=1.0)
        profiler.attribute_stream("s1", cost=1.0)
        profiler.checkpoint(1.0)
        assert profiler.total_ops == 0
        assert profiler.summary_dict()["checkpoints"] == 0

    def test_checkpoint_decimation_stays_bounded(self):
        profiler = CostProfiler(checkpoint_limit=16)
        for round_number in range(10_000):
            profiler.record("seek", cost=0.001)
            profiler.checkpoint(float(round_number))
        summary = profiler.summary_dict()
        assert 0 < summary["checkpoints"] <= 16
        times = [time for time, _ in profiler._checkpoints]
        assert times == sorted(times)

    def test_checkpoint_series_is_deterministic(self):
        def series(calls):
            profiler = CostProfiler(checkpoint_limit=8)
            for index in range(calls):
                profiler.record("transfer", cost=0.01)
                profiler.checkpoint(index * 0.5)
            return profiler._checkpoints

        assert series(500) == series(500)

    def test_chrome_counter_events_cover_costful_phases_only(self):
        profiler = CostProfiler()
        profiler.record("seek", cost=0.25)
        profiler.record("admission_scan", ops=10)  # ops only, no cost
        profiler.checkpoint(1.0)
        events = profiler.chrome_counter_events()
        names = {event["name"] for event in events}
        assert names == {"profile.seek"}
        event = events[0]
        assert event["ph"] == "C"
        assert event["ts"] == pytest.approx(1e6)
        assert event["args"]["cost_ms"] == pytest.approx(250.0)

    def test_per_drive_and_per_node_attribution(self):
        profiler = CostProfiler()
        profiler.record("seek", cost=0.1, drive="d0", node="n0")
        profiler.record("seek", cost=0.2, drive="d0", node="n1")
        summary = profiler.summary_dict()
        assert summary["per_drive"]["d0"]["seek"]["ops"] == 2
        assert summary["per_node"]["n0"]["seek"]["cost_s"] == (
            pytest.approx(0.1)
        )
        assert profiler.node_summary("n1")["seek"]["cost_s"] == (
            pytest.approx(0.2)
        )
        assert profiler.node_summary("unseen") == {}

    def test_scoped_view_attributes_node_and_memoizes(self):
        profiler = CostProfiler()
        view = profiler.scoped("node-07")
        assert profiler.scoped("node-07") is view
        view.record("transfer", cost=0.5)
        view.attribute_stream("s0", cost=0.5)
        view.checkpoint(1.0)
        assert profiler.node_summary("node-07")["transfer"]["ops"] == 1
        assert profiler.total_cost == pytest.approx(0.5)

    def test_reset_restores_fresh_state(self):
        profiler = CostProfiler()
        profiler.record("seek", cost=1.0, drive="d", node="n")
        profiler.attribute_stream("s", cost=1.0)
        profiler.checkpoint(1.0)
        profiler.reset()
        assert profiler.total_ops == 0
        summary = profiler.summary_dict()
        assert summary["per_drive"] == {}
        assert summary["per_node"] == {}
        assert summary["checkpoints"] == 0


class TestProfiledScenarios:
    def test_profiled_scale_section_is_byte_stable(self):
        from repro.perf import run_profiled_scale_scenario

        def section_json():
            run = run_profiled_scale_scenario(
                streams=5, blocks_per_stream=20, seed=11
            )
            return json.dumps(run.section, sort_keys=True, indent=2)

        assert section_json() == section_json()

    def test_profiled_scale_attribution_is_complete(self):
        from repro.perf import run_profiled_scale_scenario

        run = run_profiled_scale_scenario(
            streams=5, blocks_per_stream=20, seed=11, drive="testbed"
        )
        section = run.section
        assert set(section["phases"]) == set(PHASES)
        share_sum = sum(
            phase["share"] for phase in section["phases"].values()
        )
        assert abs(share_sum - 1.0) <= 1e-9
        assert run.blocks_delivered == 100
        # Every delivered block paid one seek and one transfer.
        assert section["phases"]["seek"]["ops"] == 100
        assert section["phases"]["transfer"]["ops"] == 100
        assert section["per_drive"].keys() == {"testbed"}
        assert section["per_stream"]["count"] == 5
        assert section["checkpoints"] >= 1
        # "wall_time_s" must stay out of the deterministic artifact.
        assert "wall_time_s" not in section

    def test_fault_recovery_phase_attributes_injected_faults(self):
        from repro.obs.scenarios import run_fault_scenario

        obs = Observability(seed=5)
        obs.enable_profiler()
        run_fault_scenario(seed=5, obs=obs)
        summary = obs.profiler.summary_dict()
        recovery = summary["phases"]["fault_recovery"]
        assert recovery["ops"] > 0
        assert recovery["cost_s"] > 0.0

    def test_server_hot_scenario_records_cache_lookups(self):
        from repro.server.scenarios import run_server_hot_scenario

        obs = Observability.for_scale(seed=0)
        obs.enable_profiler()
        run_server_hot_scenario(
            sessions=6, strands=2, seconds=1.0, seed=0, obs=obs
        )
        phases = obs.profiler.summary_dict()["phases"]
        assert phases["cache_lookup"]["ops"] > 0
        assert phases["span_finalize"]["ops"] > 0

    def test_observer_snapshot_gains_profile_section_only_when_attached(
        self,
    ):
        obs = Observability(seed=0)
        assert "profile" not in obs.snapshot_dict()
        obs.enable_profiler()
        assert "profile" in obs.snapshot_dict()

    def test_chrome_trace_rides_counter_tracks_alongside_spans(self):
        obs = Observability(seed=0)
        profiler = obs.enable_profiler()
        span = obs.tracer.start_span("work", 0.0)
        obs.tracer.end_span(span, 1.0)
        profiler.record("seek", cost=0.5)
        profiler.checkpoint(1.0)
        document = obs.to_chrome_trace()
        phases = [
            event for event in document["traceEvents"]
            if event.get("ph") == "C"
        ]
        assert phases and all(
            event["name"].startswith("profile.") for event in phases
        )
        # The span export itself is untouched.
        assert any(
            event.get("name") == "work"
            for event in document["traceEvents"]
        )


class TestScopedObservability:
    def test_requires_node_id(self):
        with pytest.raises(ParameterError):
            ScopedObservability(Observability(seed=0), "")

    def test_scoped_views_are_memoized(self):
        obs = Observability(seed=0)
        assert obs.scoped("n0") is obs.scoped("n0")
        assert obs.node_ids() == ["n0"]

    def test_writes_land_in_both_shared_and_local(self):
        obs = Observability(seed=0)
        view = obs.scoped("n0")
        view.registry.counter("x").inc(3)
        view.registry.gauge("g").set(2.5)
        view.registry.histogram("h", SEEK_TIME_BUCKETS).observe(0.5)
        assert obs.registry.peek_counter("x") == 3
        local = view.registry.snapshot_dict()
        assert local["counters"]["x"] == 3
        assert local["gauges"]["g"] == 2.5
        assert local["histograms"]["h"]["count"] == 1

    def test_parent_snapshot_equals_flat_sharing(self):
        def drive_writes(obs, scoped):
            handles = (
                [obs.scoped("a"), obs.scoped("b")] if scoped
                else [obs, obs]
            )
            for index, view in enumerate(handles):
                view.registry.counter("ops").inc(index + 1)
                view.registry.histogram(
                    "lat", SEEK_TIME_BUCKETS
                ).observe(0.1 * (index + 1))
            return obs.snapshot()

        flat = drive_writes(Observability(seed=0), scoped=False)
        federated = drive_writes(Observability(seed=0), scoped=True)
        assert flat == federated

    def test_event_surfaces_forward_to_parent(self):
        obs = Observability(seed=0)
        view = obs.scoped("n0")
        assert view.timeline is obs.timeline
        assert view.audit is obs.audit
        assert view.tracer is obs.tracer
        obs.enable_slos()
        assert view.slo is obs.slo
        assert view.scoped("n1") is obs.scoped("n1")

    def test_scoped_profiler_attributes_to_node(self):
        obs = Observability(seed=0)
        obs.enable_profiler()
        view = obs.scoped("n0")
        view.profiler.record("seek", cost=0.2)
        assert obs.profiler.node_summary("n0")["seek"]["ops"] == 1

    def test_node_snapshot_carries_profile_attribution(self):
        obs = Observability(seed=0)
        obs.enable_profiler()
        view = obs.scoped("n0")
        view.profiler.record("transfer", cost=0.4)
        snap = view.snapshot_dict()
        assert snap["node_id"] == "n0"
        assert snap["profile"]["transfer"]["cost_s"] == (
            pytest.approx(0.4)
        )


class TestMergeSnapshots:
    def _views(self):
        obs = Observability(seed=0)
        obs.enable_profiler()
        a, b = obs.scoped("a"), obs.scoped("b")
        a.registry.counter("ops").inc(2)
        b.registry.counter("ops").inc(5)
        a.registry.gauge("depth").set(1.0)
        b.registry.gauge("depth").set(4.0)
        a.registry.histogram("lat", SEEK_TIME_BUCKETS).observe(0.1)
        b.registry.histogram("lat", SEEK_TIME_BUCKETS).observe(0.2)
        a.profiler.record("seek", cost=0.1)
        b.profiler.record("seek", cost=0.3)
        return obs, a, b

    def test_counters_sum_gauges_max_histograms_bucketwise(self):
        obs, a, b = self._views()
        merged = merge_snapshots(
            [a.snapshot_dict(), b.snapshot_dict()]
        )
        metrics = merged["metrics"]
        assert metrics["counters"]["ops"] == 7
        assert metrics["counters"]["ops"] == (
            obs.registry.peek_counter("ops")
        )
        assert metrics["gauges"]["depth"] == 4.0
        histogram = metrics["histograms"]["lat"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(0.3)
        assert merged["profile"]["seek"]["ops"] == 2
        assert merged["profile"]["seek"]["cost_s"] == (
            pytest.approx(0.4)
        )

    def test_merge_accepts_json_strings_and_is_stable(self):
        _, a, b = self._views()
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        again = merge_snapshots(
            [a.snapshot_dict(), b.snapshot_dict()]
        )
        assert json.dumps(merged, sort_keys=True) == (
            json.dumps(again, sort_keys=True)
        )

    def test_mismatched_histogram_layouts_raise(self):
        with pytest.raises(ParameterError):
            merge_snapshots([
                {"histograms": {"h": {
                    "buckets": [1.0], "counts": [1], "overflow": 0,
                    "count": 1, "sum": 0.5,
                }}},
                {"histograms": {"h": {
                    "buckets": [2.0], "counts": [1], "overflow": 0,
                    "count": 1, "sum": 0.5,
                }}},
            ])

    def test_merged_node_snapshot_dict_on_observer(self):
        obs, _, _ = self._views()
        merged = obs.merged_node_snapshot_dict()
        assert merged["metrics"]["counters"]["ops"] == 7
        assert obs.node_snapshot_dicts().keys() == {"a", "b"}
