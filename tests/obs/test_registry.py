"""Unit tests for the metrics registry instruments and serialization."""

import json

import pytest

from repro.errors import ParameterError
from repro.obs import (
    DEADLINE_SLACK_BUCKETS,
    MetricsRegistry,
    Observability,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("reads")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("reads")
        with pytest.raises(ParameterError):
            counter.inc(-1)

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_bucket_placement(self):
        hist = MetricsRegistry().histogram("h", (0.0, 1.0, 10.0))
        for value in (-5.0, 0.0, 0.5, 1.0, 9.9, 10.0, 11.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 2]
        assert hist.overflow == 1
        assert hist.count == 7
        assert sum(hist.counts) + hist.overflow == hist.count

    def test_mean(self):
        hist = MetricsRegistry().histogram("h", (100.0,))
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)
        assert MetricsRegistry().histogram("empty", (1.0,)).mean == 0.0

    def test_buckets_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.histogram("bad", (2.0, 1.0))
        with pytest.raises(ParameterError):
            registry.histogram("empty", ())

    def test_reregister_with_different_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        registry.histogram("h", (1.0, 2.0))  # same layout: fine
        with pytest.raises(ParameterError):
            registry.histogram("h", (1.0, 3.0))


class TestProfileTimer:
    def test_counts_calls_and_accumulates_wall(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.timed("section"):
                pass
        timer = registry.timer("section")
        assert timer.calls == 3
        assert timer.wall_seconds >= 0.0

    def test_snapshot_excludes_wall_seconds_by_default(self):
        registry = MetricsRegistry()
        with registry.timed("section"):
            pass
        plain = json.loads(registry.snapshot())
        assert plain["timers"]["section"] == {"calls": 1}
        profiled = json.loads(registry.snapshot(include_profile=True))
        assert "wall_seconds" in profiled["timers"]["section"]


class TestDisabledRegistry:
    def test_null_instruments_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(5)
        registry.histogram("h", DEADLINE_SLACK_BUCKETS).observe(1.0)
        with registry.timed("t"):
            pass
        assert json.loads(registry.snapshot()) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }

    def test_disabled_snapshot_is_byte_stable(self):
        assert MetricsRegistry(enabled=False).snapshot() == (
            MetricsRegistry(enabled=False).snapshot()
        )


class TestSnapshotDiff:
    def test_identical_snapshots_diff_empty(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert MetricsRegistry.diff(
            registry.snapshot(), registry.snapshot()
        ) == {}

    def test_diff_reports_changed_added_removed(self):
        before = MetricsRegistry()
        before.counter("kept").inc()
        before.counter("removed").inc(2)
        snap_before = before.snapshot()
        after = MetricsRegistry()
        after.counter("kept").inc(3)
        after.gauge("added").set(1.5)
        diff = MetricsRegistry.diff(snap_before, after.snapshot())
        assert diff["counters.kept"] == [1, 3]
        assert diff["counters.removed"] == [2, None]
        assert diff["gauges.added"] == [None, 1.5]

    def test_observability_snapshot_shape(self):
        obs = Observability()
        obs.registry.counter("c").inc()
        snapshot = json.loads(obs.snapshot())
        assert set(snapshot) == {
            "metrics", "timeline", "audit", "spans", "slo", "trace_health",
        }

    def test_report_renders_all_sections(self):
        obs = Observability()
        obs.registry.counter("c").inc()
        report = obs.report()
        for section in (
            "== counters ==", "== gauges ==", "== histograms ==",
            "== timers ==", "== sessions ==", "== admission audit ==",
        ):
            assert section in report
