"""Unit tests for the declarative SLO monitor.

The monitor must evaluate objectives *read-only* (peeking never creates
instruments), emit breach events only on satisfied/breached transitions,
and serialize deterministically — including infinities from quantiles.
"""

import pytest

from repro.errors import ParameterError
from repro.obs import (
    DEADLINE_SLACK_BUCKETS,
    DEFAULT_SLOS,
    MetricsRegistry,
    Slo,
    SloMonitor,
)

pytestmark = pytest.mark.trace


class TestSloDeclaration:
    def test_rejects_unknown_op(self):
        with pytest.raises(ParameterError):
            Slo("bad", "continuity_ratio", "==", 1.0)

    def test_rejects_unknown_scope(self):
        with pytest.raises(ParameterError):
            Slo("bad", "continuity_ratio", ">=", 1.0, "hourly")

    def test_rejects_unknown_metric(self):
        with pytest.raises(ParameterError):
            Slo("bad", "cpu_load", "<=", 0.5)

    def test_reject_rate_accepts_reason_suffix(self):
        slo = Slo("typed", "reject_rate:capacity", "<=", 0.0)
        assert slo.metric == "reject_rate:capacity"

    def test_satisfied_by(self):
        floor = Slo("floor", "continuity_ratio", ">=", 1.0)
        ceil = Slo("ceil", "reject_rate", "<=", 0.0)
        assert floor.satisfied_by(1.0)
        assert not floor.satisfied_by(0.99)
        assert ceil.satisfied_by(0.0)
        assert not ceil.satisfied_by(0.01)

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        twice = (DEFAULT_SLOS[0], DEFAULT_SLOS[0])
        with pytest.raises(ParameterError):
            SloMonitor(registry, twice)

    def test_default_set_names(self):
        assert [slo.name for slo in DEFAULT_SLOS] == [
            "continuity",
            "slack-p95",
            "slack-p99",
            "cache-warm",
            "no-rejects",
            "no-capacity-rejects",
            "no-k-bound-rejects",
        ]


class TestResolution:
    def test_no_data_is_none_and_peeks_do_not_create(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        for slo in DEFAULT_SLOS:
            assert monitor.value_of(slo.metric) is None
        # Evaluation on an empty registry registers nothing.
        monitor.on_round(1.0, 1)
        monitor.finalize(2.0)
        assert registry.snapshot_dict() == MetricsRegistry().snapshot_dict()
        assert monitor.events == []

    def test_continuity_ratio(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        registry.counter("session.blocks_delivered").inc(100)
        assert monitor.value_of("continuity_ratio") == 1.0
        registry.counter("session.deadline_misses").inc(25)
        assert monitor.value_of("continuity_ratio") == 0.75

    def test_cache_hit_ratio(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        registry.counter("cache.hits").inc(3)
        registry.counter("cache.misses").inc(1)
        assert monitor.value_of("cache_hit_ratio") == 0.75

    def test_reject_rate_total_and_typed(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        registry.counter("server.sessions_opened").inc(6)
        registry.counter("server.sessions_rejected").inc(2)
        registry.counter("server.reject.capacity").inc(2)
        assert monitor.value_of("reject_rate") == 0.25
        assert monitor.value_of("reject_rate:capacity") == 0.25
        assert monitor.value_of("reject_rate:k_bound") == 0.0

    def test_slack_quantiles_use_histogram(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        hist = registry.histogram(
            "session.deadline_slack_s", DEADLINE_SLACK_BUCKETS
        )
        for _ in range(99):
            hist.observe(0.25)
        hist.observe(-0.25)
        p95 = monitor.value_of("deadline_slack_p95_s")
        p99 = monitor.value_of("deadline_slack_p99_s")
        assert p95 is not None and p95 > 0.0
        assert p99 is not None and p99 < 0.0

    def test_unknown_metric_raises(self):
        monitor = SloMonitor(MetricsRegistry())
        with pytest.raises(ParameterError):
            monitor.value_of("made_up_metric")


class TestBreachTransitions:
    def _monitor(self):
        registry = MetricsRegistry()
        slo = Slo("no-rejects", "reject_rate", "<=", 0.0, "round")
        return registry, SloMonitor(registry, (slo,))

    def test_one_event_per_transition(self):
        registry, monitor = self._monitor()
        registry.counter("server.sessions_opened").inc(4)
        assert monitor.on_round(1.0, 1) == []
        registry.counter("server.sessions_rejected").inc()
        breach = monitor.on_round(2.0, 2)
        assert len(breach) == 1
        assert breach[0]["to"] == "breach"
        assert breach[0]["round"] == 2
        assert breach[0]["value"] == 0.2
        # Still breached: no new event while the state holds.
        assert monitor.on_round(3.0, 3) == []
        # Recovery emits exactly one "ok" transition.
        registry.counter("server.sessions_opened").inc(995)
        registry.counter("server.sessions_rejected").inc(0)
        assert monitor.value_of("reject_rate") == 0.001
        recovered_slo = Slo("loose", "reject_rate", "<=", 0.01, "round")
        loose = SloMonitor(registry, (recovered_slo,))
        assert loose.on_round(4.0, 4) == []

    def test_recovery_event(self):
        registry = MetricsRegistry()
        slo = Slo("warm", "cache_hit_ratio", ">=", 0.5, "round")
        monitor = SloMonitor(registry, (slo,))
        registry.counter("cache.hits").inc(1)
        registry.counter("cache.misses").inc(9)
        assert monitor.on_round(1.0, 1)[0]["to"] == "breach"
        registry.counter("cache.hits").inc(90)
        events = monitor.on_round(2.0, 2)
        assert [e["to"] for e in events] == ["ok"]
        assert monitor.summary_dict()["breached_now"] == []

    def test_finalize_evaluates_both_scopes(self):
        registry = MetricsRegistry()
        slos = (
            Slo("continuity", "continuity_ratio", ">=", 1.0, "final"),
            Slo("no-rejects", "reject_rate", "<=", 0.0, "round"),
        )
        monitor = SloMonitor(registry, slos)
        registry.counter("session.blocks_delivered").inc(10)
        registry.counter("session.deadline_misses").inc(1)
        registry.counter("server.sessions_opened").inc(1)
        registry.counter("server.sessions_rejected").inc(1)
        events = monitor.finalize(9.0)
        assert sorted(e["slo"] for e in events) == [
            "continuity", "no-rejects",
        ]
        # Final-scope breaches carry no round number.
        assert all(e["round"] is None for e in events)


class TestSummary:
    def test_summary_shape_and_determinism(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry)
        registry.counter("session.blocks_delivered").inc(10)
        registry.counter("session.deadline_misses").inc(10)
        monitor.finalize(5.0)
        summary = monitor.summary_dict()
        assert set(summary) == {
            "objectives", "breach_events", "breached_now",
        }
        assert list(summary["objectives"]) == [s.name for s in DEFAULT_SLOS]
        continuity = summary["objectives"]["continuity"]
        assert continuity["satisfied"] is False
        assert continuity["value"] == 0.0
        # Untouched objectives report "no data".
        assert summary["objectives"]["cache-warm"]["value"] is None
        assert summary["objectives"]["cache-warm"]["satisfied"] is None
        assert summary["breached_now"] == ["continuity"]

    def test_json_value_maps_infinities(self):
        assert SloMonitor._json_value(None) is None
        assert SloMonitor._json_value(1.5) == 1.5
        assert SloMonitor._json_value(float("inf")) == "inf"
        assert SloMonitor._json_value(float("-inf")) == "-inf"
