"""End-to-end matrix gate: smoke run vs the committed baseline.

This is the ISSUE's acceptance test, marked ``matrix``: running the
smoke experiment matrix must gate cleanly against
``tests/baselines/matrix_baseline.json``, and a synthetic 20% throughput
regression must fail the gate with a typed verdict naming the offending
cell and metric.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.expt import (
    gate_manifest,
    run_matrix,
    smoke_config,
    validate_manifest,
    write_results,
)

pytestmark = pytest.mark.matrix

ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = ROOT / "tests" / "baselines" / "matrix_baseline.json"


@pytest.fixture(scope="module")
def baseline():
    manifest = json.loads(BASELINE_PATH.read_text())
    return validate_manifest(manifest)


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    report = run_matrix(smoke_config(), workers=1)
    out = tmp_path_factory.mktemp("matrix") / "smoke"
    path = write_results(report, out)
    return validate_manifest(json.loads(Path(path).read_text()))


def test_committed_baseline_matches_current_config(baseline):
    assert baseline["config_hash"] == smoke_config().hash, (
        "the smoke matrix config changed but the committed baseline was "
        "not regenerated; run `repro expt run --smoke --regen-baseline`"
    )


def test_smoke_matrix_gates_clean_against_baseline(manifest, baseline):
    report = gate_manifest(manifest, baseline)
    assert report.passed, report.render()
    # every cell of the baseline was exercised.
    gated_cells = {v.cell for v in report.verdicts}
    assert set(baseline["cells"]) <= gated_cells


def test_golden_cells_present_and_breach_free(manifest):
    golden = {
        record["kind"]: record
        for record in manifest["cells"].values()
        if record["golden"]
    }
    # One acceptance cell each: server hot-strand and cluster failover.
    assert set(golden) == {"server-hot", "cluster-scale"}
    for record in golden.values():
        assert record["metrics"]["slo_breaches"] == 0
    cluster = golden["cluster-scale"]["metrics"]
    assert cluster["handoffs"] >= 1
    assert cluster["handoff_clean_ratio"] >= 0.9


def test_injected_throughput_regression_fails_gate(manifest, baseline):
    regressed = copy.deepcopy(manifest)
    victim = sorted(regressed["cells"])[0]
    perf = regressed["cells"][victim]["perf"]
    perf["blocks_per_second"] = (
        baseline["cells"][victim]["perf"]["blocks_per_second"] * 0.8
    )
    # Explicit machine-independent tolerance: the ROADMAP's 10% budget,
    # which a 20% drop must trip regardless of host throughput.
    report = gate_manifest(
        regressed, baseline,
        tolerances={"blocks_per_second": ("relative_drop", 0.10)},
    )
    assert not report.passed
    failure = next(
        v for v in report.failures
        if v.metric == "blocks_per_second"
    )
    assert failure.cell == victim
    assert failure.kind == "relative_drop"
    assert failure.observed == pytest.approx(failure.baseline * 0.8)
    assert "dropped 20.0%" in failure.detail
    assert "limit 10.0%" in failure.detail
    rendered = report.render()
    assert "FAIL" in rendered
    assert victim in rendered and "blocks_per_second" in rendered


def test_injected_slo_breach_in_golden_cell_fails_gate(
    manifest, baseline
):
    breached = copy.deepcopy(manifest)
    golden_id = next(
        cell_id for cell_id, record in breached["cells"].items()
        if record["golden"]
    )
    breached["cells"][golden_id]["metrics"]["slo_breaches"] = 1
    report = gate_manifest(breached, baseline)
    assert not report.passed
    failure = next(
        v for v in report.failures if v.metric == "slo_breaches"
    )
    assert failure.cell == golden_id
    assert failure.kind == "max" and failure.limit == 0.0
