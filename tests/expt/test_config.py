"""Unit tests for experiment-matrix configs: schema, expansion, hashing."""

import json

import pytest

from repro.expt import (
    ExperimentConfig,
    ExperimentConfigError,
    canonical_json,
    config_hash,
    load_config,
    smoke_config,
)
from repro.expt.config import FULL_CONFIG_DICT, SMOKE_CONFIG_DICT


def _minimal(**overrides):
    raw = {
        "schema_version": 1,
        "name": "unit",
        "workloads": [{"kind": "scale", "streams": 2,
                       "blocks_per_stream": 8}],
    }
    raw.update(overrides)
    return raw


class TestValidation:
    def test_minimal_config_validates(self):
        config = ExperimentConfig.from_dict(_minimal())
        assert config.name == "unit"
        assert config.drives == ("testbed",)
        assert config.seeds == (0,)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ExperimentConfigError, match="unknown config"):
            ExperimentConfig.from_dict(_minimal(topology="ring"))

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(ExperimentConfigError, match="schema_version"):
            ExperimentConfig.from_dict(_minimal(schema_version=99))

    def test_missing_workloads_rejected(self):
        raw = _minimal()
        del raw["workloads"]
        with pytest.raises(ExperimentConfigError, match="workloads"):
            ExperimentConfig.from_dict(raw)

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ExperimentConfigError, match="kind"):
            ExperimentConfig.from_dict(
                _minimal(workloads=[{"kind": "warp-drive"}])
            )

    def test_unknown_workload_param_rejected(self):
        with pytest.raises(ExperimentConfigError, match="unknown param"):
            ExperimentConfig.from_dict(_minimal(
                workloads=[{"kind": "scale", "streamz": 2}]
            ))

    def test_non_positive_param_rejected(self):
        with pytest.raises(ExperimentConfigError, match="positive"):
            ExperimentConfig.from_dict(_minimal(
                workloads=[{"kind": "scale", "streams": 0}]
            ))

    def test_unknown_drive_rejected(self):
        with pytest.raises(ExperimentConfigError, match="drive"):
            ExperimentConfig.from_dict(
                _minimal(axes={"drives": ["floppy"]})
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentConfigError, match="unknown axes"):
            ExperimentConfig.from_dict(
                _minimal(axes={"node_count": [1]})
            )

    def test_bad_tolerance_kind_rejected(self):
        with pytest.raises(ExperimentConfigError, match="kind"):
            ExperimentConfig.from_dict(_minimal(
                tolerances={
                    "blocks_per_second": {"kind": "fuzzy", "limit": 0.1}
                }
            ))

    def test_nan_tolerance_limit_rejected(self):
        with pytest.raises(ExperimentConfigError, match="finite"):
            ExperimentConfig.from_dict(_minimal(
                tolerances={
                    "blocks_per_second": {
                        "kind": "max", "limit": float("nan"),
                    }
                }
            ))

    def test_duplicate_cells_rejected(self):
        workload = {"kind": "scale", "streams": 2, "blocks_per_stream": 8}
        config = ExperimentConfig.from_dict(
            _minimal(workloads=[workload, dict(workload)])
        )
        with pytest.raises(ExperimentConfigError, match="duplicate"):
            config.expand()


class TestExpansion:
    def test_expansion_is_deterministic(self):
        a = [c.cell_id for c in smoke_config().expand()]
        b = [c.cell_id for c in smoke_config().expand()]
        assert a == b

    def test_scale_consumes_drives_and_seeds_only(self):
        config = ExperimentConfig.from_dict(_minimal(axes={
            "drives": ["testbed", "fast"],
            "cache_blocks": [0, 64, 128],
            "batching": [True, False],
            "seeds": [0, 7],
        }))
        cells = config.expand()
        # cache and batching axes must not multiply scale cells.
        assert len(cells) == 2 * 2
        assert {c.spec_dict()["drive"] for c in cells} == {
            "testbed", "fast",
        }
        assert {c.spec_dict()["seed"] for c in cells} == {0, 7}

    def test_server_consumes_cache_batching_seeds(self):
        config = ExperimentConfig.from_dict(_minimal(
            workloads=[{"kind": "server-hot", "sessions": 4,
                        "strands": 2}],
            axes={
                "drives": ["testbed", "fast"],
                "cache_blocks": [0, 64],
                "batching": [True, False],
                "seeds": [0],
            },
        ))
        cells = config.expand()
        # the drive axis must not multiply server cells.
        assert len(cells) == 2 * 2

    def test_golden_binds_to_acceptance_configuration_only(self):
        config = ExperimentConfig.from_dict(_minimal(
            workloads=[{"kind": "server-hot", "sessions": 4,
                        "strands": 2, "golden": True}],
            axes={"cache_blocks": [0, 64], "batching": [True, False]},
        ))
        golden = {
            c.cell_id: c.golden for c in config.expand()
        }
        assert golden == {
            "server-hot-s4x2-c0-batchon-seed0": False,
            "server-hot-s4x2-c0-batchoff-seed0": False,
            "server-hot-s4x2-c64-batchon-seed0": True,
            "server-hot-s4x2-c64-batchoff-seed0": False,
        }

    def test_smoke_matrix_shape(self):
        cells = smoke_config().expand()
        kinds = [c.kind for c in cells]
        assert kinds == [
            "scale", "server-hot", "server-hot", "obs-overhead",
            "cluster-scale",
        ]
        assert sum(1 for c in cells if c.golden) == 2

    def test_cluster_consumes_seeds_only(self):
        config = ExperimentConfig.from_dict(_minimal(
            workloads=[{"kind": "cluster-scale", "nodes": 3,
                        "sessions": 8, "titles": 4}],
            axes={
                "drives": ["testbed", "fast"],
                "cache_blocks": [0, 64],
                "batching": [True, False],
                "seeds": [0, 7],
            },
        ))
        cells = config.expand()
        # drive/cache/batching axes must not multiply cluster cells.
        assert len(cells) == 2
        assert [c.cell_id for c in cells] == [
            "cluster-n3-s8-t4-seed0", "cluster-n3-s8-t4-seed7",
        ]


class TestHashing:
    def test_hash_is_key_order_insensitive(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert config_hash(a) == config_hash(b)
        assert config_hash(a).startswith("sha256:")

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_config_hash_changes_with_content(self):
        base = smoke_config()
        altered = ExperimentConfig.from_dict({
            **SMOKE_CONFIG_DICT,
            "description": "different",
        })
        assert base.hash != altered.hash

    def test_roundtrip_preserves_hash(self):
        config = smoke_config()
        again = ExperimentConfig.from_dict(config.to_dict())
        assert config.hash == again.hash


class TestLoading:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(_minimal()))
        config = load_config(str(path))
        assert config.name == "unit"

    def test_missing_file_has_clear_error(self, tmp_path):
        with pytest.raises(ExperimentConfigError, match="not found"):
            load_config(str(tmp_path / "nope.json"))

    def test_invalid_json_has_clear_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentConfigError, match="not valid JSON"):
            load_config(str(path))

    def test_committed_configs_match_builtins(self):
        # experiments/*.json are the on-disk mirrors of the builtin
        # matrices; any drift would make `--smoke` and `--config
        # experiments/smoke.json` silently diverge.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for name, builtin in (
            ("smoke", SMOKE_CONFIG_DICT), ("full", FULL_CONFIG_DICT),
        ):
            on_disk = json.loads(
                (root / "experiments" / f"{name}.json").read_text()
            )
            assert on_disk == builtin, (
                f"experiments/{name}.json drifted from the builtin "
                "config; regenerate it from "
                f"repro.expt.config.{name.upper()}_CONFIG_DICT"
            )
            assert config_hash(on_disk) == config_hash(builtin)
