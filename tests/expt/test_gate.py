"""Gate edge cases: missing/extra cells, boundaries, NaN/zero guards."""

import pytest

from repro.errors import ParameterError
from repro.expt import (
    GateReport,
    GateVerdict,
    Tolerance,
    build_manifest,
    diff_manifests,
    gate_manifest,
)
from repro.expt.runner import METRIC_KEYS


def _cell(cell_id, golden=False, **overrides):
    metrics = {key: None for key in METRIC_KEYS}
    metrics.update(
        blocks_delivered=100, misses=0, rounds=5,
        continuity_ratio=1.0, reject_rate=0.0,
    )
    perf = {"wall_time_s": 0.5, "blocks_per_second": 200.0}
    for key, value in overrides.items():
        target = perf if key in perf else metrics
        target[key] = value
    return {
        "cell_id": cell_id,
        "kind": "scale",
        "golden": golden,
        "spec": {"streams": 2},
        "metrics": metrics,
        "perf": perf,
    }


def _manifest(name, cells):
    return build_manifest(name=name, cell_records=cells)


class TestCellCoverage:
    def test_identical_manifests_pass(self):
        manifest = _manifest("a", [_cell("cell-1")])
        report = gate_manifest(manifest, manifest)
        assert report.passed
        assert report.failures == ()
        assert "PASS" in report.render()

    def test_baseline_cell_missing_from_manifest_fails(self):
        baseline = _manifest("base", [_cell("cell-1"), _cell("cell-2")])
        manifest = _manifest("run", [_cell("cell-1")])
        report = gate_manifest(manifest, baseline)
        assert not report.passed
        [failure] = report.failures
        assert failure.cell == "cell-2"
        assert failure.metric == "__cell__"
        assert failure.kind == "missing_cell"
        assert "coverage regressed" in failure.detail

    def test_manifest_extra_cell_fails_by_default(self):
        baseline = _manifest("base", [_cell("cell-1")])
        manifest = _manifest("run", [_cell("cell-1"), _cell("cell-9")])
        report = gate_manifest(manifest, baseline)
        assert not report.passed
        [failure] = report.failures
        assert (failure.cell, failure.kind) == ("cell-9", "extra_cell")
        assert "regenerate the baseline" in failure.detail

    def test_extra_cell_allowed_when_opted_in(self):
        baseline = _manifest("base", [_cell("cell-1")])
        manifest = _manifest("run", [_cell("cell-1"), _cell("cell-9")])
        report = gate_manifest(
            manifest, baseline, allow_extra_cells=True
        )
        assert report.passed
        # the extra cell is still reported, as a passing note.
        notes = [v for v in report.verdicts if v.kind == "extra_cell"]
        assert len(notes) == 1 and notes[0].passed


class TestBoundaries:
    def test_relative_drop_exactly_at_limit_passes(self):
        # limit 0.5 with baseline 200 -> floor is exactly representable
        # (100.0); a value exactly on the boundary must pass.
        baseline = _manifest("base", [_cell("c", blocks_per_second=200.0)])
        manifest = _manifest("run", [_cell("c", blocks_per_second=100.0)])
        report = gate_manifest(
            manifest, baseline,
            tolerances={"blocks_per_second": ("relative_drop", 0.5)},
        )
        assert report.passed

    def test_relative_drop_just_past_limit_fails(self):
        baseline = _manifest("base", [_cell("c", blocks_per_second=200.0)])
        manifest = _manifest("run", [_cell("c", blocks_per_second=99.0)])
        report = gate_manifest(
            manifest, baseline,
            tolerances={"blocks_per_second": ("relative_drop", 0.5)},
        )
        [failure] = report.failures
        assert failure.metric == "blocks_per_second"
        assert "dropped 50.5%" in failure.detail
        assert "limit 50.0%" in failure.detail

    def test_max_boundary_passes_and_above_fails(self):
        baseline = _manifest("base", [_cell("c", wall_time_s=1.0)])
        at_limit = _manifest("run", [_cell("c", wall_time_s=2.0)])
        over = _manifest("run", [_cell("c", wall_time_s=2.5)])
        tolerance = {"wall_time_s": ("max", 2.0)}
        assert gate_manifest(at_limit, baseline, tolerance).passed
        report = gate_manifest(over, baseline, tolerance)
        [failure] = report.failures
        assert "exceeds ceiling" in failure.detail

    def test_min_boundary_passes_and_below_fails(self):
        baseline = _manifest("base", [_cell("c", continuity_ratio=1.0)])
        at_limit = _manifest("run", [_cell("c", continuity_ratio=0.9)])
        below = _manifest("run", [_cell("c", continuity_ratio=0.89)])
        tolerance = {"continuity_ratio": ("min", 0.9)}
        assert gate_manifest(at_limit, baseline, tolerance).passed
        report = gate_manifest(below, baseline, tolerance)
        [failure] = report.failures
        assert "below floor" in failure.detail

    def test_exact_mismatch_names_cell_and_metric(self):
        baseline = _manifest("base", [_cell("scale-x", misses=0)])
        manifest = _manifest("run", [_cell("scale-x", misses=3)])
        report = gate_manifest(manifest, baseline)
        [failure] = report.failures
        assert failure.cell == "scale-x"
        assert failure.metric == "misses"
        assert "deterministic metric drifted" in failure.detail
        rendered = report.render()
        assert "scale-x" in rendered and "misses" in rendered


class TestGuards:
    def test_zero_baseline_cannot_anchor_relative_drop(self):
        baseline = _manifest("base", [_cell("c", blocks_per_second=0.0)])
        manifest = _manifest("run", [_cell("c", blocks_per_second=50.0)])
        report = gate_manifest(manifest, baseline)
        verdict = next(
            v for v in report.verdicts
            if v.metric == "blocks_per_second"
        )
        assert verdict.passed
        assert "cannot anchor" in verdict.detail

    def test_null_pair_passes_with_note(self):
        baseline = _manifest("base", [_cell("c", cache_hit_ratio=None)])
        manifest = _manifest("run", [_cell("c", cache_hit_ratio=None)])
        report = gate_manifest(manifest, baseline)
        verdict = next(
            v for v in report.verdicts if v.metric == "cache_hit_ratio"
        )
        assert verdict.passed
        assert "not recorded on either side" in verdict.detail

    def test_metric_vanishing_from_manifest_fails(self):
        baseline = _manifest("base", [_cell("c", cache_hit_ratio=0.5)])
        manifest = _manifest("run", [_cell("c", cache_hit_ratio=None)])
        report = gate_manifest(manifest, baseline)
        [failure] = report.failures
        assert failure.metric == "cache_hit_ratio"
        assert "missing from the" in failure.detail

    def test_metric_appearing_without_baseline_fails_exact(self):
        baseline = _manifest("base", [_cell("c", cache_hit_ratio=None)])
        manifest = _manifest("run", [_cell("c", cache_hit_ratio=0.5)])
        report = gate_manifest(manifest, baseline)
        [failure] = report.failures
        assert failure.metric == "cache_hit_ratio"
        assert "regenerate the baseline" in failure.detail

    def test_nan_tolerance_limit_rejected(self):
        with pytest.raises(ParameterError, match="NaN"):
            Tolerance(metric="x", kind="max", limit=float("nan"))

    def test_unknown_tolerance_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown tolerance"):
            Tolerance(metric="x", kind="fuzzy", limit=1.0)

    def test_nan_metric_rejected_at_validation(self):
        bad = _cell("c")
        bad["metrics"]["misses"] = float("nan")
        with pytest.raises(ParameterError, match="NaN"):
            _manifest("run", [bad])


class TestGoldenCells:
    def test_golden_cell_refuses_slo_breach(self):
        baseline = _manifest(
            "base", [_cell("g", golden=True, slo_breaches=2)]
        )
        manifest = _manifest(
            "run", [_cell("g", golden=True, slo_breaches=2)]
        )
        # Even matching the baseline exactly, a golden cell with
        # unresolved breaches fails: golden forces ("max", 0).
        report = gate_manifest(manifest, baseline)
        [failure] = report.failures
        assert failure.metric == "slo_breaches"
        assert failure.kind == "max"
        assert failure.limit == 0.0

    def test_non_golden_cell_tracks_breaches_exactly(self):
        baseline = _manifest("base", [_cell("c", slo_breaches=2)])
        same = _manifest("run", [_cell("c", slo_breaches=2)])
        drifted = _manifest("run", [_cell("c", slo_breaches=3)])
        assert gate_manifest(same, baseline).passed
        report = gate_manifest(drifted, baseline)
        [failure] = report.failures
        assert failure.metric == "slo_breaches"


class TestReportShapes:
    def test_report_to_dict_round_trips_verdicts(self):
        baseline = _manifest("base", [_cell("c", misses=0)])
        manifest = _manifest("run", [_cell("c", misses=1)])
        report = gate_manifest(manifest, baseline)
        data = report.to_dict()
        assert data["passed"] is False
        assert data["manifest"] == "run"
        assert data["baseline"] == "base"
        assert data["failures"] == 1
        assert data["checks"] == len(report.verdicts)
        row = next(
            r for r in data["verdicts"] if not r["passed"]
        )
        assert row["cell"] == "c" and row["metric"] == "misses"

    def test_table_marks_failures(self):
        baseline = _manifest("base", [_cell("c", misses=0)])
        manifest = _manifest("run", [_cell("c", misses=1)])
        text = gate_manifest(manifest, baseline).table().render()
        assert "FAIL" in text and "misses" in text

    def test_verdict_types(self):
        manifest = _manifest("a", [_cell("c")])
        report = gate_manifest(manifest, manifest)
        assert isinstance(report, GateReport)
        assert all(isinstance(v, GateVerdict) for v in report.verdicts)


class TestDiff:
    def test_diff_reports_deltas_and_membership(self):
        baseline = _manifest(
            "base", [_cell("c", misses=0), _cell("gone")]
        )
        manifest = _manifest(
            "run", [_cell("c", misses=4), _cell("new")]
        )
        diff = diff_manifests(manifest, baseline)
        assert diff["cells"]["gone"]["status"] == "missing"
        assert diff["cells"]["new"]["status"] == "extra"
        delta = diff["cells"]["c"]["deltas"]["misses"]
        assert delta == {"baseline": 0, "observed": 4}

    def test_diff_relative_delta(self):
        baseline = _manifest("base", [_cell("c", blocks_per_second=100.0)])
        manifest = _manifest("run", [_cell("c", blocks_per_second=80.0)])
        diff = diff_manifests(manifest, baseline)
        delta = diff["cells"]["c"]["deltas"]["blocks_per_second"]
        assert delta["relative"] == pytest.approx(-0.2)
