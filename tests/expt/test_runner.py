"""Runner contracts: determinism, results layout, manifest validation."""

import json

import pytest

from repro.errors import ParameterError
from repro.expt import (
    build_manifest,
    cell_from_scale_result,
    run_cell,
    run_matrix,
    smoke_config,
    stable_json,
    validate_manifest,
    write_results,
)
from repro.expt.runner import METRIC_KEYS, PERF_KEYS, _ratio
from repro.perf import run_scale_scenario
from repro.perf.scenarios import ScaleScenario


@pytest.fixture(scope="module")
def smoke_report():
    # One serial smoke-matrix run shared across this module's tests;
    # workers=1 keeps it deterministic and avoids fork cost per test.
    return run_matrix(smoke_config(), workers=1)


class TestStableJson:
    def test_sorted_indented_trailing_newline(self):
        text = stable_json({"b": 1, "a": {"z": 2, "y": 3}})
        assert text == (
            '{\n  "a": {\n    "y": 3,\n    "z": 2\n  },\n  "b": 1\n}\n'
        )

    def test_identical_data_identical_bytes(self):
        a = {"x": [1, 2], "y": None}
        b = {"y": None, "x": [1, 2]}
        assert stable_json(a) == stable_json(b)


class TestRatioGuard:
    def test_plain_ratio(self):
        assert _ratio(3.0, 4.0) == 0.75

    def test_zero_denominator_is_none(self):
        assert _ratio(1.0, 0.0) is None

    def test_nan_inputs_are_none(self):
        assert _ratio(float("nan"), 1.0) is None
        assert _ratio(1.0, float("nan")) is None


class TestRunCell:
    def test_every_smoke_cell_carries_full_metric_set(self, smoke_report):
        for cell in smoke_report.cells:
            assert set(cell.metrics) == set(METRIC_KEYS)
            assert set(PERF_KEYS) <= set(cell.perf)

    def test_metrics_deterministic_across_runs(self, smoke_report):
        again = run_matrix(smoke_config(), workers=1)
        first = {c.cell_id: c.metrics for c in smoke_report.cells}
        second = {c.cell_id: c.metrics for c in again.cells}
        assert first == second
        # byte-level: the metrics sections serialize identically.
        assert stable_json(first) == stable_json(second)

    def test_scale_cell_matches_direct_scenario_run(self, smoke_report):
        [cell] = [c for c in smoke_report.cells if c.kind == "scale"]
        direct = run_scale_scenario(ScaleScenario(
            name="direct",
            streams=cell.spec["streams"],
            blocks_per_stream=cell.spec["blocks_per_stream"],
            k=cell.spec["k"],
            buffer_capacity=cell.spec["buffer_capacity"],
            seed=cell.spec["seed"],
            drive=cell.spec["drive"],
            arrivals=cell.spec["arrivals"],
        ))
        assert cell.metrics["blocks_delivered"] == direct.blocks_delivered
        assert cell.metrics["misses"] == direct.misses
        assert cell.metrics["rounds"] == direct.rounds

    def test_unknown_kind_rejected(self, smoke_report):
        from repro.expt import MatrixCell

        with pytest.raises(ParameterError, match="unknown cell kind"):
            run_cell(MatrixCell(
                cell_id="x", kind="quantum", golden=False, spec=(),
            ))

    def test_obs_overhead_ratio_lives_in_perf_not_metrics(
        self, smoke_report
    ):
        [cell] = [
            c for c in smoke_report.cells if c.kind == "obs-overhead"
        ]
        assert "obs_overhead_ratio" in cell.perf
        assert "obs_overhead_ratio" not in cell.metrics


class TestResultsLayout:
    def test_write_results_structure(self, smoke_report, tmp_path):
        manifest_path = write_results(smoke_report, tmp_path / "out")
        manifest = json.loads(open(manifest_path).read())
        validate_manifest(manifest)
        assert manifest["name"] == "smoke"
        assert manifest["config_hash"] == smoke_config().hash
        cell_files = sorted(
            p.name for p in (tmp_path / "out" / "cells").iterdir()
        )
        assert cell_files == sorted(
            f"{c}.json" for c in manifest["cells"]
        )
        # per-cell files carry the same record as the manifest entry.
        for cell_id, record in manifest["cells"].items():
            on_disk = json.loads(
                (tmp_path / "out" / "cells" / f"{cell_id}.json")
                .read_text()
            )
            assert on_disk == record

    def test_manifest_is_byte_stable_given_same_metrics(
        self, smoke_report, tmp_path
    ):
        write_results(smoke_report, tmp_path / "a")
        write_results(smoke_report, tmp_path / "b")
        assert (
            (tmp_path / "a" / "matrix.json").read_bytes()
            == (tmp_path / "b" / "matrix.json").read_bytes()
        )


class TestBuildManifest:
    def _record(self, cell_id="c"):
        metrics = {key: None for key in METRIC_KEYS}
        metrics["blocks_delivered"] = 10
        return {
            "cell_id": cell_id,
            "kind": "scale",
            "golden": False,
            "spec": {},
            "metrics": metrics,
            "perf": {"wall_time_s": 0.1, "blocks_per_second": 100.0},
        }

    def test_builds_and_validates(self):
        manifest = build_manifest("ext", [self._record()])
        assert manifest["kind"] == "expt_matrix"
        assert manifest["config_hash"].startswith("sha256:")
        validate_manifest(manifest)

    def test_duplicate_cell_ids_rejected(self):
        with pytest.raises(ParameterError, match="duplicate cell id"):
            build_manifest("ext", [self._record(), self._record()])

    def test_cell_from_scale_result_bridges_schema(self):
        result = run_scale_scenario(ScaleScenario(
            name="bridge", streams=2, blocks_per_stream=8,
            k=2, buffer_capacity=4, seed=0,
        ))
        record = cell_from_scale_result(result)
        manifest = build_manifest("bench", [record])
        validate_manifest(manifest)
        assert record["metrics"]["blocks_delivered"] == 16


class TestValidateManifest:
    def _valid(self):
        metrics = {key: None for key in METRIC_KEYS}
        return {
            "kind": "expt_matrix",
            "schema_version": 1,
            "name": "v",
            "config": {},
            "config_hash": "sha256:00",
            "workers": 1,
            "parallel": False,
            "wall_time_s": 0.0,
            "cells": {
                "c": {
                    "cell_id": "c",
                    "kind": "scale",
                    "golden": False,
                    "spec": {},
                    "metrics": metrics,
                    "perf": {
                        "wall_time_s": 0.1,
                        "blocks_per_second": 1.0,
                    },
                }
            },
        }

    def test_valid_manifest_passes(self):
        validate_manifest(self._valid())

    def test_non_dict_rejected(self):
        with pytest.raises(ParameterError, match="expected an object"):
            validate_manifest([1, 2])

    def test_missing_top_level_key_named(self):
        bad = self._valid()
        del bad["config_hash"]
        with pytest.raises(ParameterError, match="config_hash"):
            validate_manifest(bad)

    def test_wrong_kind_rejected(self):
        bad = self._valid()
        bad["kind"] = "bench"
        with pytest.raises(ParameterError, match="expt_matrix"):
            validate_manifest(bad)

    def test_wrong_schema_version_rejected(self):
        bad = self._valid()
        bad["schema_version"] = 9
        with pytest.raises(ParameterError, match="schema_version"):
            validate_manifest(bad)

    def test_bad_hash_prefix_rejected(self):
        bad = self._valid()
        bad["config_hash"] = "md5:00"
        with pytest.raises(ParameterError, match="sha256"):
            validate_manifest(bad)

    def test_empty_cells_rejected(self):
        bad = self._valid()
        bad["cells"] = {}
        with pytest.raises(ParameterError, match="non-empty"):
            validate_manifest(bad)

    def test_cell_missing_metric_named(self):
        bad = self._valid()
        del bad["cells"]["c"]["metrics"]["misses"]
        with pytest.raises(ParameterError, match="misses"):
            validate_manifest(bad)

    def test_mismatched_cell_id_rejected(self):
        bad = self._valid()
        bad["cells"]["c"]["cell_id"] = "other"
        with pytest.raises(ParameterError, match="mismatched"):
            validate_manifest(bad)

    def test_non_numeric_metric_rejected(self):
        bad = self._valid()
        bad["cells"]["c"]["metrics"]["misses"] = "three"
        with pytest.raises(ParameterError, match="numeric or null"):
            validate_manifest(bad)

    def test_nan_metric_rejected(self):
        bad = self._valid()
        bad["cells"]["c"]["perf"]["wall_time_s"] = float("nan")
        with pytest.raises(ParameterError, match="NaN"):
            validate_manifest(bad)
