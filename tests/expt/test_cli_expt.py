"""CLI contract for ``repro expt run|gate|diff``."""

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.expt import stable_json, validate_manifest

ROOT = Path(__file__).resolve().parents[2]
BASELINE = ROOT / "tests" / "baselines" / "matrix_baseline.json"


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    """One CLI smoke run shared by the module: (out_dir, manifest)."""
    out = tmp_path_factory.mktemp("cli") / "smoke"
    code = main([
        "expt", "run", "--smoke", "--out", str(out), "--workers", "1",
    ])
    assert code == 0
    manifest = json.loads((out / "matrix.json").read_text())
    return out, validate_manifest(manifest)


class TestRun:
    def test_requires_smoke_or_config(self):
        with pytest.raises(SystemExit, match="--smoke or --config"):
            main(["expt", "run"])

    def test_rejects_both_smoke_and_config(self, tmp_path):
        config = tmp_path / "c.json"
        config.write_text("{}")
        with pytest.raises(SystemExit, match="either"):
            main([
                "expt", "run", "--smoke", "--config", str(config),
            ])

    def test_smoke_run_writes_results_dir(self, smoke_run, capsys):
        out, manifest = smoke_run
        assert manifest["name"] == "smoke"
        assert (out / "cells").is_dir()

    def test_summary_names_cells(self, smoke_run, tmp_path, capsys):
        out = tmp_path / "again"
        main([
            "expt", "run", "--smoke", "--out", str(out),
            "--workers", "1",
        ])
        stdout = capsys.readouterr().out
        assert "expt run 'smoke'" in stdout
        assert "scale-testbed-uniform-n4-b16-seed0" in stdout
        assert f"wrote {out / 'matrix.json'}" in stdout

    def test_json_flag_prints_manifest(self, tmp_path, capsys):
        out = tmp_path / "json"
        main([
            "expt", "run", "--smoke", "--out", str(out),
            "--workers", "1", "--json",
        ])
        manifest = json.loads(capsys.readouterr().out)
        validate_manifest(manifest)

    def test_config_file_run(self, tmp_path, capsys):
        config = {
            "schema_version": 1,
            "name": "mini",
            "workloads": [{
                "kind": "scale", "streams": 2, "blocks_per_stream": 8,
            }],
        }
        config_path = tmp_path / "mini.json"
        config_path.write_text(json.dumps(config))
        out = tmp_path / "mini-out"
        code = main([
            "expt", "run", "--config", str(config_path),
            "--out", str(out), "--workers", "1",
        ])
        assert code == 0
        manifest = json.loads((out / "matrix.json").read_text())
        assert manifest["name"] == "mini"
        assert list(manifest["cells"]) == [
            "scale-testbed-uniform-n2-b8-seed0"
        ]

    def test_regen_baseline_writes_stable_manifest(
        self, tmp_path, capsys
    ):
        out = tmp_path / "regen"
        baseline = tmp_path / "nested" / "baseline.json"
        code = main([
            "expt", "run", "--smoke", "--out", str(out),
            "--workers", "1", "--regen-baseline",
            "--baseline", str(baseline),
        ])
        assert code == 0
        data = json.loads(baseline.read_text())
        validate_manifest(data)
        # the baseline is stable_json-encoded byte for byte.
        assert baseline.read_text() == stable_json(data)
        assert f"regenerated baseline {baseline}" in (
            capsys.readouterr().out
        )


class TestGate:
    def test_gate_passes_against_committed_baseline(
        self, smoke_run, capsys
    ):
        out, _ = smoke_run
        code = main([
            "expt", "gate", "--manifest", str(out / "matrix.json"),
            "--baseline", str(BASELINE),
        ])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "PASS" in stdout

    def test_gate_fails_with_nonzero_exit_and_named_cell(
        self, smoke_run, tmp_path, capsys
    ):
        out, manifest = smoke_run
        regressed = copy.deepcopy(manifest)
        victim = sorted(regressed["cells"])[0]
        regressed["cells"][victim]["metrics"]["misses"] = 999
        bad_path = tmp_path / "regressed.json"
        bad_path.write_text(stable_json(regressed))
        code = main([
            "expt", "gate", "--manifest", str(bad_path),
            "--baseline", str(BASELINE),
        ])
        stdout = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in stdout
        assert victim in stdout and "misses" in stdout

    def test_gate_json_output(self, smoke_run, capsys):
        out, _ = smoke_run
        code = main([
            "expt", "gate", "--manifest", str(out / "matrix.json"),
            "--baseline", str(BASELINE), "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["checks"] > 0

    def test_gate_verbose_prints_table(self, smoke_run, capsys):
        out, _ = smoke_run
        main([
            "expt", "gate", "--manifest", str(out / "matrix.json"),
            "--baseline", str(BASELINE), "--verbose",
        ])
        stdout = capsys.readouterr().out
        assert "cell" in stdout and "metric" in stdout

    def test_missing_manifest_has_guidance(self, tmp_path):
        with pytest.raises(SystemExit, match="expt run --smoke"):
            main([
                "expt", "gate",
                "--manifest", str(tmp_path / "nope.json"),
                "--baseline", str(BASELINE),
            ])

    def test_missing_baseline_suggests_regen(self, smoke_run, tmp_path):
        out, _ = smoke_run
        with pytest.raises(SystemExit, match="--regen-baseline"):
            main([
                "expt", "gate",
                "--manifest", str(out / "matrix.json"),
                "--baseline", str(tmp_path / "nope.json"),
            ])


class TestDiff:
    def test_diff_runs_clean(self, smoke_run, capsys):
        out, _ = smoke_run
        code = main([
            "expt", "diff", "--manifest", str(out / "matrix.json"),
            "--baseline", str(BASELINE),
        ])
        assert code == 0
        assert "expt diff" in capsys.readouterr().out

    def test_diff_json_shape(self, smoke_run, capsys):
        out, manifest = smoke_run
        code = main([
            "expt", "diff", "--manifest", str(out / "matrix.json"),
            "--baseline", str(BASELINE), "--json",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["cells"]) == set(manifest["cells"])


class TestParser:
    def test_expt_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["expt"])

    def test_help_mentions_expt(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "expt" in capsys.readouterr().out
