"""Property-based tests for the continuity model (hypothesis)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.symbols import (
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
)
from repro.errors import InfeasibleError

blocks = st.builds(
    BlockModel,
    unit_rate=st.floats(min_value=1.0, max_value=120.0),
    unit_size=st.floats(min_value=64.0, max_value=1e7),
    granularity=st.integers(min_value=1, max_value=64),
)

disks = st.builds(
    lambda rate, track, avg_extra, max_extra: DiskParameters(
        transfer_rate=rate,
        seek_track=track,
        seek_avg=track + avg_extra,
        seek_max=track + avg_extra + max_extra,
    ),
    rate=st.floats(min_value=1e5, max_value=1e10),
    track=st.floats(min_value=0.0, max_value=0.01),
    avg_extra=st.floats(min_value=0.0, max_value=0.02),
    max_extra=st.floats(min_value=0.0, max_value=0.05),
)

devices = st.builds(
    DisplayDeviceParameters,
    display_rate=st.floats(min_value=1e5, max_value=1e10),
    buffer_frames=st.integers(min_value=2, max_value=64),
)

scatterings = st.floats(min_value=0.0, max_value=0.2)
architectures = st.sampled_from(
    [Architecture.SEQUENTIAL, Architecture.PIPELINED]
)


class TestSlackProperties:
    @given(block=blocks, disk=disks, device=devices,
           l1=scatterings, l2=scatterings, arch=architectures)
    def test_monotone_in_scattering(self, block, disk, device, l1, l2, arch):
        """Increasing l_ds never turns infeasible into feasible."""
        low, high = min(l1, l2), max(l1, l2)
        slack_low = continuity.slack(arch, block, disk, device, low)
        slack_high = continuity.slack(arch, block, disk, device, high)
        assert slack_low >= slack_high - 1e-12

    @given(block=blocks, disk=disks, device=devices, l_ds=scatterings)
    def test_pipelined_never_below_sequential(
        self, block, disk, device, l_ds
    ):
        assert continuity.pipelined_slack(block, disk, l_ds) >= (
            continuity.sequential_slack(block, disk, device, l_ds)
        )

    @given(block=blocks, disk=disks, l_ds=scatterings,
           p=st.integers(min_value=2, max_value=16))
    def test_concurrent_slack_monotone_in_p(self, block, disk, l_ds, p):
        assert continuity.concurrent_slack(block, disk, l_ds, p + 1) >= (
            continuity.concurrent_slack(block, disk, l_ds, p)
        )

    @given(block=blocks, disk=disks, device=devices, arch=architectures)
    def test_max_scattering_is_exact_boundary(
        self, block, disk, device, arch
    ):
        try:
            bound = continuity.max_scattering(arch, block, disk, device)
        except InfeasibleError:
            # Then even l_ds = 0 must be infeasible.
            assert continuity.slack(arch, block, disk, device, 0.0) < 0
            return
        assert continuity.slack(
            arch, block, disk, device, bound
        ) == pytest.approx(0.0, abs=1e-9)
        epsilon = max(1e-9, bound * 1e-6)
        assert continuity.slack(
            arch, block, disk, device, bound + epsilon
        ) < 0

    @given(block=blocks, disk=disks, device=devices, arch=architectures,
           factor=st.integers(min_value=2, max_value=8))
    def test_granularity_growth_never_hurts_bound(
        self, block, disk, device, arch, factor
    ):
        """Bigger blocks amortize the gap: the l_ds bound cannot shrink."""
        try:
            small = continuity.max_scattering(arch, block, disk, device)
        except InfeasibleError:
            return
        bigger = block.with_granularity(block.granularity * factor)
        big = continuity.max_scattering(arch, bigger, disk, device)
        assert big >= small - 1e-12


class TestThroughputProperties:
    @given(disk=disks,
           bits=st.floats(min_value=1e3, max_value=1e8),
           gap=st.floats(min_value=0.0, max_value=0.1))
    def test_throughput_bounded_by_streaming_rate(self, disk, bits, gap):
        throughput = continuity.effective_throughput(bits, disk, gap)
        assert throughput <= disk.heads * disk.transfer_rate + 1e-6

    @given(disk=disks, gap=st.floats(min_value=1e-4, max_value=0.1),
           bits=st.floats(min_value=1e3, max_value=1e7),
           factor=st.floats(min_value=1.1, max_value=100.0))
    def test_bigger_blocks_amortize_gaps(self, disk, gap, bits, factor):
        small = continuity.effective_throughput(bits, disk, gap)
        large = continuity.effective_throughput(bits * factor, disk, gap)
        assert large >= small - 1e-9
