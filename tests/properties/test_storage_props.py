"""Property-based tests for free-space, allocation, index, and GC."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import (
    ConstrainedScatterAllocator,
    FreeMap,
    ScatterBounds,
    build_drive,
)
from repro.errors import GarbageCollectionError, ScatteringError
from repro.fs.gc import InterestRegistry
from repro.fs.index import PrimaryEntry, StrandIndex


class TestFreeMapProperties:
    @given(
        operations=st.lists(
            st.tuples(st.booleans(), st.integers(0, 63)), max_size=200
        )
    )
    def test_free_count_always_consistent(self, operations):
        """free_count equals the actual number of free slots, always."""
        fm = FreeMap(64)
        reference = set(range(64))  # free slots
        for allocate, slot in operations:
            if allocate and slot in reference:
                fm.allocate(slot)
                reference.discard(slot)
            elif not allocate and slot not in reference:
                fm.release(slot)
                reference.add(slot)
        assert fm.free_count == len(reference)
        assert set(fm.free_slots()) == reference
        assert fm.occupancy == pytest.approx(1 - len(reference) / 64)

    @given(
        used=st.sets(st.integers(0, 63), max_size=40),
        length=st.integers(1, 10),
    )
    def test_find_run_returns_genuinely_free_run(self, used, length):
        fm = FreeMap(64)
        for slot in used:
            fm.allocate(slot)
        start = fm.find_run(length)
        if start is None:
            # Verify no run exists by brute force.
            free = [s for s in range(64) if s not in used]
            longest = current = 0
            previous = None
            for slot in free:
                current = current + 1 if previous == slot - 1 else 1
                longest = max(longest, current)
                previous = slot
            assert longest < length
        else:
            assert all(fm.is_free(s) for s in range(start, start + length))


class TestConstrainedAllocationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        extra=st.floats(min_value=0.002, max_value=0.02),
        count=st.integers(min_value=2, max_value=60),
        seed=st.integers(0, 1000),
    )
    def test_every_gap_within_bounds(self, extra, count, seed):
        drive = build_drive()
        freemap = FreeMap(drive.slots)
        # Pre-fragment the disk randomly to stress the window search.
        rng = random.Random(seed)
        for _ in range(drive.slots // 4):
            slot = rng.randrange(drive.slots)
            if freemap.is_free(slot):
                freemap.allocate(slot)
        bounds = ScatterBounds(
            0.0, drive.rotation.average_latency + extra
        )
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        try:
            slots = allocator.allocate_strand(count)
        except ScatteringError:
            # A crowded window may legitimately refuse; the property under
            # test is only about the gaps of *successful* placements.
            return
        for a, b in zip(slots, slots[1:]):
            assert bounds.admits(drive.access_gap(a, b))


class TestIndexProperties:
    @given(
        pattern=st.lists(st.booleans(), min_size=1, max_size=300),
        primary_fanout=st.integers(2, 16),
        secondary_fanout=st.integers(2, 8),
    )
    def test_lookup_matches_reference(
        self, pattern, primary_fanout, secondary_fanout
    ):
        """Random stored/silence patterns round-trip through the 3-level
        index, and verify() passes."""
        index = StrandIndex(
            frame_rate=30.0,
            primary_fanout=primary_fanout,
            secondary_fanout=secondary_fanout,
        )
        reference = []
        for i, stored in enumerate(pattern):
            entry = (
                PrimaryEntry(sector=i * 64, sector_count=64)
                if stored
                else None
            )
            index.append(entry, units=4)
            reference.append(entry)
        assert index.block_count == len(reference)
        for i, expected in enumerate(reference):
            assert index.lookup(i) == expected
        assert list(index) == reference
        index.verify()


class TestInterestProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["register", "drop_rope"]),
                st.integers(0, 4),   # rope
                st.integers(0, 6),   # strand
            ),
            max_size=100,
        )
    )
    def test_referenced_strands_never_collectable(self, events):
        registry = InterestRegistry()
        reference = {}  # rope -> set of strands
        for action, rope, strand in events:
            rope_id, strand_id = f"R{rope}", f"S{strand}"
            if action == "register":
                registry.register(rope_id, strand_id)
                reference.setdefault(rope_id, set()).add(strand_id)
            else:
                registry.drop_rope(rope_id)
                reference.pop(rope_id, None)
        live = set().union(*reference.values()) if reference else set()
        for strand in (f"S{i}" for i in range(7)):
            assert registry.is_referenced(strand) == (strand in live)
