"""Property-based tests for the interval algebra and rope operations."""

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.errors import IntervalError
from repro.rope import operations as ops
from repro.rope.intervals import (
    MediaTrack,
    Segment,
    delete_range,
    slice_segments,
    splice_segments,
    total_duration,
)
from repro.rope.structures import Media

#: One video frame at 30 fps — the rounding tolerance of time<->unit
#: conversion, per segment boundary crossed.
FRAME = 1.0 / 30.0


@st.composite
def av_segments(draw, min_segments=1, max_segments=5):
    """A list of AV segments with varied strands and offsets."""
    count = draw(st.integers(min_segments, max_segments))
    segments = []
    for i in range(count):
        seconds = draw(st.integers(2, 20))  # whole seconds: exact units
        start_block = draw(st.integers(0, 10))
        segments.append(
            Segment(
                video=MediaTrack(
                    strand_id=f"V{i}",
                    start_unit=start_block * 4,
                    length_units=30 * seconds,
                    rate=30.0,
                    granularity=4,
                ),
                audio=MediaTrack(
                    strand_id=f"A{i}",
                    start_unit=start_block * 2048,
                    length_units=8000 * seconds,
                    rate=8000.0,
                    granularity=2048,
                ),
            )
        )
    return segments


class TestSliceProperties:
    @given(segments=av_segments(), data=st.data())
    def test_slice_duration_matches_request(self, segments, data):
        total = total_duration(segments)
        start = data.draw(
            st.floats(min_value=0.0, max_value=total * 0.6)
        )
        length = data.draw(
            st.floats(min_value=0.5, max_value=max(0.5, total - start))
        )
        assume(start + length <= total)
        result = slice_segments(segments, start, length)
        tolerance = FRAME * (len(result) + 1)
        assert total_duration(result) == pytest.approx(
            length, abs=tolerance
        )

    @given(segments=av_segments())
    def test_full_slice_is_identity_duration(self, segments):
        total = total_duration(segments)
        result = slice_segments(segments, 0.0, total)
        assert total_duration(result) == pytest.approx(total, abs=1e-6)
        assert len(result) == len(segments)


class TestSpliceDeleteInverse:
    @given(segments=av_segments(max_segments=3),
           insertion=av_segments(max_segments=2), data=st.data())
    def test_insert_grows_by_inserted_duration(
        self, segments, insertion, data
    ):
        total = total_duration(segments)
        position = data.draw(st.floats(min_value=0.0, max_value=total))
        result = splice_segments(segments, position, insertion)
        assert total_duration(result) == pytest.approx(
            total + total_duration(insertion), abs=FRAME * 4
        )

    @given(segments=av_segments(min_segments=2), data=st.data())
    def test_delete_shrinks_by_deleted_duration(self, segments, data):
        total = total_duration(segments)
        start = data.draw(st.floats(min_value=0.0, max_value=total / 2))
        length = data.draw(
            st.floats(min_value=0.5, max_value=total / 3)
        )
        assume(start + length < total - 0.5)
        result = delete_range(segments, start, length)
        assert total_duration(result) == pytest.approx(
            total - length, abs=FRAME * (len(segments) + 2)
        )

    @given(segments=av_segments(max_segments=3),
           insertion=av_segments(max_segments=1), data=st.data())
    def test_insert_then_delete_roundtrips_duration(
        self, segments, insertion, data
    ):
        total = total_duration(segments)
        position = data.draw(st.floats(min_value=0.0, max_value=total))
        inserted = splice_segments(segments, position, insertion)
        removed = delete_range(
            inserted, position, total_duration(insertion)
        )
        assert total_duration(removed) == pytest.approx(
            total, abs=FRAME * 6
        )


class TestOperationInvariants:
    @given(segments=av_segments(), data=st.data())
    def test_substring_never_references_new_strands(self, segments, data):
        total = total_duration(segments)
        start = data.draw(st.floats(min_value=0.0, max_value=total / 2))
        length = data.draw(st.floats(min_value=0.5, max_value=total / 2))
        assume(start + length <= total)
        result = ops.substring(segments, Media.AUDIO_VISUAL, start, length)
        original = set()
        for segment in segments:
            original.update(segment.strand_ids())
        for segment in result:
            assert set(segment.strand_ids()).issubset(original)

    @given(first=av_segments(max_segments=3),
           second=av_segments(max_segments=3))
    def test_concate_is_exact(self, first, second):
        result = ops.concate(first, second)
        assert total_duration(result) == pytest.approx(
            total_duration(first) + total_duration(second), abs=1e-9
        )
        assert len(result) == len(first) + len(second)

    @given(segments=av_segments(min_segments=2), data=st.data())
    def test_single_medium_delete_preserves_duration(self, segments, data):
        total = total_duration(segments)
        start = data.draw(st.floats(min_value=0.0, max_value=total / 2))
        length = data.draw(st.floats(min_value=0.5, max_value=total / 3))
        assume(start + length <= total)
        result = ops.delete(segments, Media.AUDIO, start, length)
        assert total_duration(result) == pytest.approx(
            total, abs=FRAME * (len(segments) + 3)
        )
