"""Property-based tests for the observability layer (hypothesis).

The invariants golden files alone cannot pin down:

(a) timeline well-ordering — per-block lifecycle events are
    monotonically timestamped and stage-ordered for *any* serviced
    workload, faulted or not;
(b) conservation — ``consumed + skipped == enqueued`` for every
    completed session, and timeline skips equal the continuity
    metrics' skips;
(c) histogram arithmetic — bucket counts always sum to the observation
    count (with overflow), for arbitrary bounds and samples;
(d) determinism — the full snapshot is byte-identical across two runs
    of the same seeded workload.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.obs import MetricsRegistry, Observability
from repro.rope.server import BlockFetch
from repro.service.rounds import RoundRobinService, StreamState

#: Generous playback duration: properties target event ordering and
#: conservation, not deadline pressure.
BLOCK_PLAYBACK = 0.2

workloads = st.fixed_dictionaries(
    {
        "streams": st.integers(min_value=1, max_value=3),
        "blocks": st.integers(min_value=2, max_value=10),
        "k": st.integers(min_value=1, max_value=4),
        "seed": st.integers(min_value=0, max_value=2**16),
        "transient": st.integers(min_value=0, max_value=3),
        "defects": st.integers(min_value=0, max_value=2),
        "budget": st.integers(min_value=0, max_value=2),
    }
)


def _run_observed(spec):
    """Service a synthetic multi-stream workload under observation."""
    drive = build_drive()
    streams = []
    all_slots = []
    for i in range(spec["streams"]):
        base = i * spec["blocks"] * 3
        slots = list(range(base, base + spec["blocks"] * 3, 3))
        all_slots.extend(slots)
        fetches = [
            BlockFetch(
                slot=slot, bits=drive.block_bits, duration=BLOCK_PLAYBACK
            )
            for slot in slots
        ]
        streams.append(
            StreamState(
                request_id=f"r{i}", fetches=fetches, buffer_capacity=4
            )
        )
    faults = spec["transient"] + spec["defects"]
    if faults and faults <= len(all_slots):
        plan = FaultPlan.random(
            seed=spec["seed"],
            slots=all_slots,
            transient=spec["transient"],
            defects=spec["defects"],
        )
        drive.attach_injector(FaultInjector(plan))
    obs = Observability()
    service = RoundRobinService(
        drive,
        lambda round_number, active: spec["k"],
        recovery=RecoveryPolicy(retry_budget=spec["budget"]),
        obs=obs,
    )
    metrics = service.run(streams)
    return obs, metrics


class TestTimelineProperties:
    @settings(deadline=None, max_examples=25)
    @given(spec=workloads)
    def test_events_well_ordered_and_conserved(self, spec):
        obs, _metrics = _run_observed(spec)
        obs.timeline.validate()
        for session_id in obs.timeline.sessions():
            assert obs.timeline.conservation_holds(session_id), (
                obs.timeline.stage_counts(session_id)
            )

    @settings(deadline=None, max_examples=25)
    @given(spec=workloads)
    def test_timeline_skips_equal_metric_skips(self, spec):
        obs, metrics = _run_observed(spec)
        timeline_skips = sum(
            obs.timeline.stage_counts(sid).get("skipped", 0)
            for sid in obs.timeline.sessions()
        )
        assert timeline_skips == sum(m.skips for m in metrics.values())

    @settings(deadline=None, max_examples=25)
    @given(spec=workloads)
    def test_delivered_counter_matches_metrics(self, spec):
        obs, metrics = _run_observed(spec)
        delivered = obs.registry.counter("session.blocks_delivered")
        assert delivered.value == sum(
            m.blocks_delivered for m in metrics.values()
        )


class TestHistogramProperties:
    @settings(deadline=None, max_examples=100)
    @given(
        bounds=st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        samples=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=50,
        ),
    )
    def test_bucket_counts_sum_to_count(self, bounds, samples):
        hist = MetricsRegistry().histogram("h", sorted(bounds))
        for value in samples:
            hist.observe(value)
        assert sum(hist.counts) + hist.overflow == hist.count
        assert hist.count == len(samples)

    @settings(deadline=None, max_examples=25)
    @given(spec=workloads)
    def test_run_histograms_satisfy_invariant(self, spec):
        obs, _metrics = _run_observed(spec)
        snapshot = obs.registry.snapshot_dict()
        assert snapshot["histograms"], "run recorded no histograms"
        for name, data in snapshot["histograms"].items():
            assert sum(data["counts"]) + data["overflow"] == (
                data["count"]
            ), name


class TestSnapshotDeterminism:
    @settings(deadline=None, max_examples=15)
    @given(spec=workloads)
    def test_same_seed_same_snapshot(self, spec):
        first, _ = _run_observed(spec)
        second, _ = _run_observed(spec)
        assert first.snapshot() == second.snapshot()
        assert Observability.diff(
            first.snapshot(), second.snapshot()
        ) == {}
