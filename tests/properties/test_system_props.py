"""System-level property tests: the reproduction's central guarantees.

These tie the analytic layer to the executable one over randomized
inputs: whatever the §3.4 controller admits must simulate continuously,
whatever the §4.2 repairer touches must end up within bounds, and
persistence must be a faithful bijection on file-system state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import TESTBED_1991
from repro.core import admission as adm
from repro.core.editing_bounds import copy_bound_dense
from repro.core.symbols import DisplayDeviceParameters, video_block_model
from repro.disk import build_drive
from repro.errors import AdmissionRejected
from repro.fs import MultimediaStorageManager, dump_image, load_image
from repro.fs.storage_manager import MultimediaStorageManager as MSM
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.rope.scattering_repair import ScatteringRepairer
from repro.service import PlaybackSession

PROFILE = TESTBED_1991

slow_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_servers(buffer_frames=8):
    device = DisplayDeviceParameters(
        display_rate=PROFILE.video_device.display_rate,
        buffer_frames=buffer_frames,
    )
    msm = MultimediaStorageManager(
        build_drive(), PROFILE.video, PROFILE.audio, device,
        PROFILE.audio_device,
    )
    return msm, MultimediaRopeServer(msm)


class TestAdmissionSimulationSafety:
    @slow_settings
    @given(
        n_attempt=st.integers(min_value=1, max_value=5),
        clip_seconds=st.floats(min_value=3.0, max_value=8.0),
    )
    def test_admitted_requests_always_play_continuously(
        self, n_attempt, clip_seconds
    ):
        """THE property: admission implies zero deadline misses."""
        msm, mrs = fresh_servers()
        frames = frames_for_duration(
            PROFILE.video, clip_seconds, source="prop"
        )
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        admitted = []
        for _ in range(n_attempt):
            try:
                admitted.append(mrs.play("u", rope_id, media=Media.VIDEO))
            except AdmissionRejected:
                break
        if not admitted:
            return
        result = PlaybackSession(mrs).run(admitted)
        assert result.all_continuous


class TestSeamRepairProperty:
    @slow_settings
    @given(
        hint_a=st.integers(min_value=0, max_value=2000),
        hint_b=st.integers(min_value=3000, max_value=7000),
        seconds=st.floats(min_value=2.0, max_value=6.0),
    )
    def test_repaired_seams_always_within_bounds(
        self, hint_a, hint_b, seconds
    ):
        msm, mrs_unused = fresh_servers(buffer_frames=2)  # granularity 1
        mrs = MultimediaRopeServer(msm, auto_repair=False)
        frames = frames_for_duration(PROFILE.video, seconds, source="x")
        strand_a = msm.store_video_strand(frames, hint=hint_a)
        strand_b = msm.store_video_strand(
            frames, hint=min(hint_b, msm.drive.slots - 1)
        )
        rope_a = mrs.adopt_strands("u", video_strand_id=strand_a.strand_id)
        rope_b = mrs.adopt_strands("u", video_strand_id=strand_b.strand_id)
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(msm)
        segments, report = repairer.repair_segments(merged.segments)
        assert report.residual_violations == 0
        for check in repairer.check_segments(segments):
            assert not check.violates
        if report.blocks_copied:
            bound = copy_bound_dense(
                msm.disk_params.seek_max,
                msm.policies.video.scattering_lower,
            )
            assert report.blocks_copied <= bound * max(
                1, report.seams_repaired
            )


class TestPersistenceProperty:
    @slow_settings
    @given(
        clips=st.integers(min_value=1, max_value=3),
        edit_position=st.floats(min_value=0.5, max_value=2.5),
        seconds=st.floats(min_value=3.0, max_value=6.0),
    )
    def test_dump_load_dump_is_identity(self, clips, edit_position, seconds):
        msm, mrs = fresh_servers()
        rope_ids = []
        for i in range(clips):
            frames = frames_for_duration(
                PROFILE.video, seconds, source=f"c{i}"
            )
            request_id, rope_id = mrs.record("u", frames=frames)
            mrs.stop(request_id)
            rope_ids.append(rope_id)
        if len(rope_ids) >= 2:
            mrs.insert(
                "u", rope_ids[0], edit_position, Media.VIDEO,
                rope_ids[1], 0.0, min(2.0, seconds),
            )
        image = dump_image(msm, mrs)
        msm2, mrs2 = fresh_servers()
        load_image(image, msm2, mrs2)
        assert dump_image(msm2, mrs2) == image
