"""Property-based tests for admission control (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import admission as adm
from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import AdmissionRejected

disks = st.builds(
    lambda rate, track, avg_extra, max_extra: DiskParameters(
        transfer_rate=rate,
        seek_track=track,
        seek_avg=track + avg_extra,
        seek_max=track + avg_extra + max_extra,
    ),
    rate=st.floats(min_value=1e6, max_value=1e9),
    track=st.floats(min_value=1e-4, max_value=0.005),
    avg_extra=st.floats(min_value=1e-4, max_value=0.02),
    max_extra=st.floats(min_value=1e-4, max_value=0.05),
)

blocks = st.builds(
    BlockModel,
    unit_rate=st.floats(min_value=5.0, max_value=60.0),
    unit_size=st.floats(min_value=1e3, max_value=1e6),
    granularity=st.integers(min_value=1, max_value=16),
)


def descriptor_for(block, disk):
    return adm.RequestDescriptor(block=block, scattering_avg=disk.seek_avg)


class TestCapacityProperties:
    @given(disk=disks, block=blocks)
    def test_k_satisfies_inequalities_for_all_feasible_n(self, disk, block):
        """For every n <= n_max: Eq. 18's k satisfies Eq. 15 and Eq. 18."""
        descriptor = descriptor_for(block, disk)
        params1 = adm.service_parameters([descriptor], disk)
        limit = min(adm.n_max(params1), 12)
        for n in range(1, limit + 1):
            params = adm.service_parameters([descriptor] * n, disk)
            try:
                k = adm.k_transition(params)
            except AdmissionRejected:
                # Permitted only at the exact capacity boundary, where
                # the remaining headroom is floating-point noise.
                assert n == adm.n_max(params1)
                continue
            assert n * params.alpha + n * k * params.beta <= (
                k * params.gamma + 1e-6 * params.gamma
            )
            assert n * params.alpha + n * (k - 1) * params.beta <= (
                k * params.gamma + 1e-6 * params.gamma
            )

    @given(disk=disks, block=blocks)
    def test_beyond_n_max_always_rejected(self, disk, block):
        descriptor = descriptor_for(block, disk)
        params1 = adm.service_parameters([descriptor], disk)
        n_over = adm.n_max(params1) + 1
        params = adm.service_parameters([descriptor] * n_over, disk)
        with pytest.raises(AdmissionRejected):
            adm.k_transition(params)

    @given(disk=disks, block=blocks)
    def test_accepted_round_is_exactly_feasible(self, disk, block):
        """Uniform request sets: the Eq.-18 k passes the exact Eq.-11 test."""
        descriptor = descriptor_for(block, disk)
        params1 = adm.service_parameters([descriptor], disk)
        limit = min(adm.n_max(params1), 8)
        for n in range(1, limit + 1):
            params = adm.service_parameters([descriptor] * n, disk)
            try:
                k = adm.k_transition(params)
            except AdmissionRejected:
                assert n == adm.n_max(params1)
                continue
            requests = [descriptor] * n
            assert adm.round_feasible(requests, disk, [k] * n)

    @settings(deadline=None, max_examples=30)
    @given(disk=disks, block=blocks)
    def test_controller_never_exceeds_capacity(self, disk, block):
        from hypothesis import assume

        descriptor = descriptor_for(block, disk)
        controller = adm.AdmissionController(disk)
        params = adm.service_parameters([descriptor], disk)
        capacity = adm.n_max(params)
        assume(capacity <= 150)  # keep the example loop fast
        admitted = 0
        for _ in range(capacity + 5):
            try:
                controller.admit(descriptor)
                admitted += 1
            except AdmissionRejected:
                break
        assert admitted <= capacity
        if admitted < capacity:
            # Only the k operating bound may stop admissions early.
            params_next = adm.service_parameters(
                [descriptor] * (admitted + 1), disk
            )
            assert adm.k_transition(params_next) > controller.max_k

    @given(disk=disks, block=blocks,
           releases=st.lists(st.integers(0, 30), max_size=8))
    def test_controller_state_consistent_under_churn(
        self, disk, block, releases
    ):
        descriptor = descriptor_for(block, disk)
        controller = adm.AdmissionController(disk)
        live = []
        for _ in range(6):
            try:
                live.append(controller.admit(descriptor).request_id)
            except AdmissionRejected:
                break
        for choice in releases:
            if not live:
                break
            request_id = live.pop(choice % len(live))
            controller.release(request_id)
        assert controller.active_count == len(live)
        if live:
            params = controller.parameters()
            assert controller.current_k == adm.k_transition(params)
        else:
            assert controller.current_k == 0
