"""Property-based tests for the fault-injection subsystem (hypothesis).

The three invariants the chaos machinery rests on:

(a) determinism — the same seed and workload replay bit-identical
    continuity metrics;
(b) a retry budget of zero turns every transient fault into exactly one
    skip (no hidden recovery, no double-count);
(c) conservation — the faults the injector reports equal the faults the
    drive's stats counted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import build_drive
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy
from repro.rope.server import BlockFetch
from repro.service import simulate_pipelined

BLOCKS = 40
#: Generous per-block playback duration so deadline pressure never skips
#: a retriable block — properties target the budget/count arithmetic.
BLOCK_PLAYBACK = 0.2


def _run(seed, transient, defects, budget):
    """One pipelined playback over a seeded fault plan."""
    drive = build_drive()
    slots = list(range(0, BLOCKS * 3, 3))
    fetches = [
        BlockFetch(
            slot=slot, bits=drive.block_bits, duration=BLOCK_PLAYBACK
        )
        for slot in slots
    ]
    plan = FaultPlan.random(
        seed=seed, slots=slots, transient=transient, defects=defects
    )
    injector = FaultInjector(plan)
    drive.attach_injector(injector)
    metrics, ready = simulate_pipelined(
        fetches,
        drive,
        read_ahead=2,
        recovery=RecoveryPolicy(retry_budget=budget),
    )
    return drive, injector, metrics, ready


seeds = st.integers(min_value=0, max_value=2**32 - 1)
transients = st.integers(min_value=0, max_value=8)
defect_counts = st.integers(min_value=0, max_value=5)
budgets = st.integers(min_value=0, max_value=3)


class TestFaultProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, transient=transients, defects=defect_counts,
           budget=budgets)
    def test_same_seed_identical_metrics(
        self, seed, transient, defects, budget
    ):
        """(a) Two runs of one seed are indistinguishable to the bit."""
        _, _, first, ready_a = _run(seed, transient, defects, budget)
        _, _, second, ready_b = _run(seed, transient, defects, budget)
        assert first.summary() == second.summary()
        assert ready_a == ready_b

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, transient=transients, defects=defect_counts)
    def test_zero_retry_budget_one_skip_per_fault(
        self, seed, transient, defects
    ):
        """(b) budget 0: every injected fault is exactly one skip."""
        drive, _, metrics, _ = _run(seed, transient, defects, budget=0)
        assert metrics.skips == transient + defects
        assert drive.stats.retries == 0
        assert drive.stats.degraded_reads == 0

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, transient=transients, defects=defect_counts,
           budget=budgets)
    def test_injected_count_matches_drive_stats(
        self, seed, transient, defects, budget
    ):
        """(c) injector and DriveStats agree on the fault count; with a
        positive budget every transient recovers and only defects skip."""
        drive, injector, metrics, _ = _run(
            seed, transient, defects, budget
        )
        assert injector.injected == drive.stats.faults_injected
        assert injector.pending_transients == 0
        if budget > 0:
            assert metrics.skips == defects
            assert drive.stats.degraded_reads == transient
            # Each defect surfaces once (one access per slot, no retry);
            # each transient surfaces once and recovers on retry 1.
            assert drive.stats.faults_injected == transient + defects
