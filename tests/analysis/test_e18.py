"""Shape tests for E18 (anti-jitter read-ahead)."""

import pytest

from repro.analysis import e18_antijitter


class TestE18AntiJitter:
    @pytest.fixture(scope="class")
    def result(self):
        return e18_antijitter()

    def test_strict_continuity_breaks_under_jitter(self, result):
        assert result.misses_by_readahead[0] > 0

    def test_read_ahead_restores_continuity(self, result):
        assert result.misses_by_readahead[8] == 0

    def test_misses_monotone_in_readahead(self, result):
        ordered = [
            result.misses_by_readahead[k] for k in sorted(
                result.misses_by_readahead
            )
        ]
        assert ordered == sorted(ordered, reverse=True)
