"""Shape tests for the experiment drivers (DESIGN.md §3 criteria).

These are the reproduction's acceptance tests: each experiment must show
the qualitative shape the paper reports — who wins, where the crossovers
and capacity limits fall — without asserting exact magnitudes.
"""

import pytest

from repro.analysis import experiments as exp


@pytest.fixture(scope="module")
def e1():
    return exp.e1_architectures()


@pytest.fixture(scope="module")
def e2():
    return exp.e2_k_vs_n()


class TestE1Architectures:
    def test_bound_ordering(self, e1):
        """Sequential < pipelined <= concurrent tolerance."""
        assert e1.bounds["sequential"] < e1.bounds["pipelined"]
        assert e1.bounds["pipelined"] <= e1.bounds["concurrent(p=2)"]

    def test_analysis_is_safe(self, e1):
        """No misses inside the analytic region, for any architecture."""
        assert all(m == 0 for m in e1.misses_inside.values())

    def test_single_head_fails_at_widest_gap(self, e1):
        assert e1.misses_outside["sequential"] > 0
        assert e1.misses_outside["pipelined"] > 0


class TestE2KvsN(object):
    def test_k_monotone_and_divergent(self, e2):
        """Fig. 4's shape: k grows with n, steeply near capacity."""
        ks = e2.series_transition.ys
        assert ks == sorted(ks)
        if len(ks) >= 3:
            first_step = ks[1] - ks[0]
            last_step = ks[-1] - ks[-2]
            assert last_step > first_step  # hyperbolic steepening

    def test_refusal_exactly_past_n_max(self, e2):
        assert e2.n_max >= 1
        assert len(e2.series_steady) == e2.n_max

    def test_transition_k_at_least_steady_k(self, e2):
        for steady, transition in zip(
            e2.series_steady.ys, e2.series_transition.ys
        ):
            assert transition >= steady


class TestE3Transition:
    def test_staged_walk_is_glitch_free(self):
        result = exp.e3_transition()
        assert result.staged_misses == 0
        assert result.naive_misses > 0


class TestE4Allocation:
    def test_random_needs_buffering_constrained_does_not(self):
        result = exp.e4_allocation()
        assert result.read_ahead_needed["constrained"] == 0
        assert result.read_ahead_needed["contiguous"] == 0
        assert result.read_ahead_needed["random"] > 0
        assert result.max_gaps["random"] > result.max_gaps["constrained"]


class TestE5Buffering:
    def test_counts_and_h(self):
        result = exp.e5_buffering()
        rows = {(r[0], r[1]): (r[2], r[3]) for r in result.table.rows}
        assert rows[("sequential", 4)] == (4, 4)
        assert rows[("pipelined", 4)] == (4, 8)
        assert rows[("concurrent(p=4)", 4)] == (16, 16)
        assert result.switch_read_ahead >= 1
        assert result.accumulation_rate > 0  # slow motion accumulates


class TestE6MixedMedia:
    def test_heterogeneous_tolerates_more_scattering(self):
        result = exp.e6_mixed_media()
        assert result.heterogeneous_bound > result.homogeneous_bound


class TestE7HDTV:
    def test_matches_paper_figures(self):
        result = exp.e7_hdtv()
        # ~0.32 Gbit/s array throughput, ~7.8x short of HDTV.
        assert result.array_throughput == pytest.approx(0.32e9, rel=0.05)
        assert result.shortfall == pytest.approx(7.8, rel=0.1)


class TestE8EditCopy:
    def test_copies_within_paper_bounds(self):
        result = exp.e8_edit_copy()
        sparse_bound, dense_bound = result.bounds["sparse"]
        assert 1 <= result.copies["sparse"] <= sparse_bound
        assert 1 <= result.copies["dense"] <= dense_bound
        assert dense_bound >= 2 * sparse_bound - 1


class TestE9RopeOps:
    def test_editing_copies_no_media(self):
        result = exp.e9_rope_ops()
        assert all(c == 0 for c in result.media_blocks_copied.values())


class TestE10Silence:
    def test_saving_grows_with_silence(self):
        result = exp.e10_silence()
        savings = result.series.ys
        assert savings == sorted(savings)
        assert savings[0] == pytest.approx(0.0, abs=0.05)
        assert savings[-1] > 0.4
        # Duration preserved in every row.
        assert all(row[4] for row in result.table.rows)


class TestE11Symbols:
    def test_hdtv_infeasible_testbed_feasible(self):
        result = exp.e11_symbols()
        by_profile = {row[0]: row for row in result.table.rows}
        assert by_profile["testbed-1991"][6] is True
        assert by_profile["hdtv-2.5gbit"][6] is False


class TestE12Prototype:
    def test_session_continuous_and_rejects_at_capacity(self):
        result = exp.e12_prototype()
        assert result.all_continuous
        assert result.rejected_at >= 2
        # Startup latency grows with each additional admitted request.
        latencies = result.startup_series.ys
        assert latencies == sorted(latencies)
