"""Shape tests for E19 (unified server) and E20 (heterogeneous k)."""

import pytest

from repro.analysis import e19_unified_server, e20_heterogeneous_k


class TestE19UnifiedServer:
    @pytest.fixture(scope="class")
    def result(self):
        return e19_unified_server()

    def test_media_guarantee_never_broken(self, result):
        assert all(m == 0 for m in result.media_misses_by_load.values())

    def test_text_throughput_decreases_with_media_load(self, result):
        served = [result.text_served_by_load[n] for n in (0, 1, 2)]
        assert served == sorted(served, reverse=True)

    def test_text_still_served_under_load(self, result):
        assert result.text_served_by_load[2] > 0


class TestE20HeterogeneousK:
    @pytest.fixture(scope="class")
    def result(self):
        return e20_heterogeneous_k()

    def test_solver_dominates_uniform_model(self, result):
        for name, uniform_ok in result.uniform_admitted.items():
            if uniform_ok:
                assert result.heterogeneous_admitted[name]

    def test_solver_rescues_mixed_workloads(self, result):
        rescued = [
            name
            for name in result.heterogeneous_admitted
            if result.heterogeneous_admitted[name]
            and not result.uniform_admitted[name]
        ]
        assert "2 video + 4 audio" in rescued
        assert "1 video + 10 audio" in rescued

    def test_every_admission_verified_against_eq11(self, result):
        # The table's last column was computed with round_feasible.
        for row in result.table.rows:
            name, _uniform, hetero, _ks, verified = row
            if hetero:
                assert verified, f"{name} admitted but not verified"
