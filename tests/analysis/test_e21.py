"""Shape tests for E21 (concurrent storage + retrieval)."""

import pytest

from repro.analysis import e21_record_and_play


class TestE21RecordAndPlay:
    @pytest.fixture(scope="class")
    def result(self):
        return e21_record_and_play()

    def test_sane_mixes_glitch_free(self, result):
        for label, misses in result.misses_by_load.items():
            if "overload" not in label:
                assert misses == 0, f"{label} missed {misses}"

    def test_overload_breaks_down(self, result):
        assert result.misses_by_load[
            "overload: 1-block staging, 3 play"
        ] > 0
