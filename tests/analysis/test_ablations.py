"""Shape tests for the design-choice ablations."""

import pytest

from repro.analysis import (
    ablate_block_size,
    ablate_copy_budget,
    ablate_granularity,
)


class TestGranularityAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablate_granularity()

    def test_bound_monotone_in_eta(self, result):
        bounds = [result.series[eta]["bound"] for eta in (1, 2, 4, 8)]
        assert bounds == sorted(bounds)

    def test_capacity_never_decreases_with_eta(self, result):
        capacities = [result.series[eta]["n_max"] for eta in (1, 2, 4, 8)]
        assert capacities == sorted(capacities)


class TestCopyBudgetAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablate_copy_budget()

    def test_window_monotone_in_budget(self, result):
        windows = [result.series[b] for b in (1, 2, 4, 8, 16)]
        assert windows == sorted(windows)

    def test_unbounded_budget_is_widest(self, result):
        bounded = max(result.series[b] for b in (1, 2, 4, 8, 16))
        assert result.series[0] >= bounded

    def test_window_loss_inversely_proportional_to_budget(self, result):
        """The window given up equals l_seek_max/(2·C_b): doubling the
        budget halves the sacrifice."""
        unbounded = result.series[0]
        loss_1 = unbounded - result.series[1]
        loss_2 = unbounded - result.series[2]
        loss_4 = unbounded - result.series[4]
        assert loss_1 == pytest.approx(2 * loss_2, rel=1e-6)
        assert loss_2 == pytest.approx(2 * loss_4, rel=1e-6)


class TestBlockSizeAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablate_block_size()

    def test_throughput_monotone_in_block_size(self, result):
        throughputs = [result.series[s] for s in (16, 32, 64, 128)]
        assert throughputs == sorted(throughputs)

    def test_waste_reported(self, result):
        waste = {row[0]: row[4] for row in result.table.rows}
        assert waste[128] > waste[16]  # bigger slots waste more on audio
