"""Unit tests for report rendering."""

import pytest

from repro.analysis.report import Table, format_cell, render_series
from repro.errors import ParameterError
from repro.sim.metrics import SweepSeries


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_floats(self):
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert "e" in format_cell(1.5e9)
        assert "e" in format_cell(1.5e-7)

    def test_ints_and_strings(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 22222)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        # All data lines share the header's column positions.
        assert lines[4].index("1") == lines[5].index("2")

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ParameterError):
            table.add_row(1)

    def test_empty_table_renders(self):
        table = Table("Empty", ["x"])
        assert "Empty" in table.render()

    def test_str_equals_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()


class TestRenderSeries:
    def test_bars_scale_to_max(self):
        series = SweepSeries("s", "x", "y")
        series.add(1, 10.0)
        series.add(2, 5.0)
        text = render_series(series, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_empty_series(self):
        series = SweepSeries("s", "x", "y")
        assert "empty" in render_series(series)
