"""Shape tests for the §6.2 extension experiments (E13-E16)."""

import pytest

from repro.analysis import extensions as ext


class TestE13VariableRate:
    def test_vbr_always_gains(self):
        result = ext.e13_variable_rate()
        assert all(gain > 1.0 for gain in result.gains.values())

    def test_gain_uniform_across_granularity(self):
        """The mean-size ratio is granularity-independent, so the gain is
        (approximately) constant across η."""
        result = ext.e13_variable_rate()
        gains = list(result.gains.values())
        assert max(gains) - min(gains) < 0.5


class TestE14ScanOrdering:
    @pytest.fixture(scope="class")
    def result(self):
        return ext.e14_scan_ordering()

    def test_scan_never_slower(self, result):
        assert result.scan_mean_round <= result.rr_mean_round

    def test_measured_capacity_beats_pessimistic(self, result):
        assert result.measured_n_max > result.analytic_n_max


class TestE15Reorganization:
    @pytest.fixture(scope="class")
    def result(self):
        return ext.e15_reorganization()

    def test_fragmentation_blocks_placement(self, result):
        assert not result.feasible_before

    def test_reorganization_restores_it(self, result):
        assert result.feasible_after
        assert result.blocks_moved > 0


class TestE16VariableSpeed:
    @pytest.fixture(scope="class")
    def result(self):
        return ext.e16_variable_speed()

    def test_all_modes_continuous(self, result):
        for label, row in result.rows.items():
            assert row.continuous, f"{label} missed deadlines"

    def test_skipping_reduces_fetches(self, result):
        skip = result.rows["fast-forward 2x, skipping"]
        noskip = result.rows["fast-forward 2x, no skip"]
        assert skip.metrics.blocks_delivered == (
            noskip.metrics.blocks_delivered // 2
        )

    def test_slow_motion_accumulates_and_switches(self, result):
        slow = result.rows["slow motion 0.5x"]
        normal = result.rows["normal (1x)"]
        assert slow.task_switches >= normal.task_switches
        assert slow.switch_idle_time > normal.switch_idle_time
