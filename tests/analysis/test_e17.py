"""Shape tests for E17 (striped storage)."""

import pytest

from repro.analysis import e17_striping


class TestE17Striping:
    @pytest.fixture(scope="class")
    def result(self):
        return e17_striping()

    def test_all_widths_continuous(self, result):
        assert all(m == 0 for m in result.misses_by_heads.values())

    def test_bound_grows_with_heads(self, result):
        bounds = [result.bounds_by_heads[p] for p in (2, 4, 8)]
        assert bounds == sorted(bounds)
        # Roughly (p-1)-proportional growth minus the fixed transfer term.
        assert result.bounds_by_heads[8] > 2 * result.bounds_by_heads[4]
