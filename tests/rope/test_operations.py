"""Unit tests for the §4.1 rope operations (pure segment-list forms)."""

import pytest

from repro.errors import IntervalError
from repro.rope import operations as ops
from repro.rope.intervals import MediaTrack, Segment, total_duration
from repro.rope.structures import Media


def video_track(seconds=10.0, start=0, strand="V1"):
    return MediaTrack(
        strand_id=strand, start_unit=start,
        length_units=int(30 * seconds), rate=30.0, granularity=4,
    )


def audio_track(seconds=10.0, start=0, strand="A1"):
    return MediaTrack(
        strand_id=strand, start_unit=start,
        length_units=int(8000 * seconds), rate=8000.0, granularity=2048,
    )


def av(seconds=10.0, v="V1", a="A1"):
    return Segment(
        video=video_track(seconds, strand=v),
        audio=audio_track(seconds, strand=a),
    )


class TestSubstring:
    def test_both_media(self):
        result = ops.substring([av(10.0)], Media.AUDIO_VISUAL, 2.0, 5.0)
        assert total_duration(result) == pytest.approx(5.0)
        assert result[0].video is not None
        assert result[0].audio is not None

    def test_video_only_projection(self):
        result = ops.substring([av(10.0)], Media.VIDEO, 0.0, 5.0)
        assert result[0].video is not None
        assert result[0].audio is None

    def test_projection_with_no_content_rejected(self):
        video_only = Segment(video=video_track(10.0))
        with pytest.raises(IntervalError):
            ops.substring([video_only], Media.AUDIO, 0.0, 5.0)


class TestInsertFig9:
    def test_insert_mirrors_fig9(self):
        """Fig. 9: insert withRope into Rope1 at position, splitting it."""
        rope1 = [av(20.0, v="VS1", a="AS1")]
        rope2 = [av(10.0, v="VS2", a="AS2")]
        result = ops.insert(
            rope1, 5.0, Media.AUDIO_VISUAL, rope2, 0.0, 10.0
        )
        assert len(result) == 3
        # Piece 1: Rope1 [0, 5); Piece 2: Rope2 [0, 10); Piece 3: rest.
        assert result[0].video.strand_id == "VS1"
        assert result[0].duration == pytest.approx(5.0)
        assert result[1].video.strand_id == "VS2"
        assert result[1].duration == pytest.approx(10.0)
        assert result[2].video.strand_id == "VS1"
        assert result[2].video.start_unit == 150
        assert total_duration(result) == pytest.approx(30.0)

    def test_insert_single_medium(self):
        base = [av(10.0)]
        donor = [av(4.0, v="VS2", a="AS2")]
        result = ops.insert(base, 5.0, Media.AUDIO, donor, 0.0, 4.0)
        inserted = result[1]
        assert inserted.audio.strand_id == "AS2"
        assert inserted.video is None
        assert total_duration(result) == pytest.approx(14.0)


class TestDelete:
    def test_delete_both_media_shortens(self):
        result = ops.delete([av(10.0)], Media.AUDIO_VISUAL, 2.0, 3.0)
        assert total_duration(result) == pytest.approx(7.0)

    def test_delete_single_medium_keeps_length(self):
        result = ops.delete([av(10.0)], Media.AUDIO, 2.0, 3.0)
        assert total_duration(result) == pytest.approx(10.0)
        middle = result[1]
        assert middle.audio is None
        assert middle.video is not None

    def test_delete_everything_rejected(self):
        with pytest.raises(IntervalError):
            ops.delete([av(10.0)], Media.AUDIO_VISUAL, 0.0, 10.0)


class TestReplace:
    def test_replace_both_media(self):
        base = [av(20.0, v="VS1", a="AS1")]
        donor = [av(10.0, v="VS2", a="AS2")]
        result = ops.replace(
            base, Media.AUDIO_VISUAL, 5.0, 10.0, donor, 0.0, 10.0
        )
        assert total_duration(result) == pytest.approx(20.0)
        assert result[1].video.strand_id == "VS2"

    def test_replace_video_only_merges_rope4_rope5(self):
        """The paper's Rope4/Rope5 example: graft video onto audio."""
        rope4 = [Segment(audio=audio_track(10.0, strand="AS4"))]
        rope5 = [Segment(video=video_track(10.0, strand="VS5"))]
        result = ops.replace(
            rope4, Media.VIDEO, 0.0, 10.0, rope5, 0.0, 10.0
        )
        assert total_duration(result) == pytest.approx(10.0)
        merged = result[0]
        assert merged.video.strand_id == "VS5"
        assert merged.audio.strand_id == "AS4"
        # Fresh block-level correspondence exists.
        assert merged.correspondence == (0, 0)

    def test_replace_audio_keeps_video(self):
        base = [av(10.0, v="VS1", a="AS1")]
        donor = [av(10.0, v="VS2", a="AS2")]
        result = ops.replace(
            base, Media.AUDIO, 2.0, 5.0, donor, 0.0, 5.0
        )
        assert total_duration(result) == pytest.approx(10.0)
        middle = result[1]
        assert middle.audio.strand_id == "AS2"
        assert middle.video.strand_id == "VS1"

    def test_replace_mismatched_intervals_rejected(self):
        base = [av(20.0)]
        donor = [av(3.0, v="VS2", a="AS2")]
        with pytest.raises(IntervalError):
            ops.replace(base, Media.AUDIO, 0.0, 10.0, donor, 0.0, 3.0)


class TestConcate:
    def test_concate_fig10(self):
        rope1 = [av(10.0, v="VS1", a="AS1")]
        rope2 = [av(5.0, v="VS2", a="AS2")]
        result = ops.concate(rope1, rope2)
        assert len(result) == 2
        assert total_duration(result) == pytest.approx(15.0)
        # Pointer manipulation only: the very same segment objects.
        assert result[0] is rope1[0]
        assert result[1] is rope2[0]


class TestStripAndProject:
    def test_strip_video(self):
        result = ops.strip_medium([av(10.0)], Media.VIDEO)
        assert result[0].video is None
        assert result[0].audio is not None

    def test_strip_both_rejected(self):
        with pytest.raises(IntervalError):
            ops.strip_medium([av(10.0)], Media.AUDIO_VISUAL)

    def test_strip_only_track_rejected(self):
        video_only = [Segment(video=video_track(10.0))]
        with pytest.raises(IntervalError):
            ops.strip_medium(video_only, Media.VIDEO)

    def test_project_drops_empty_segments(self):
        mixed = [
            Segment(video=video_track(5.0)),
            Segment(audio=audio_track(5.0)),
        ]
        result = ops.project_medium(mixed, Media.VIDEO)
        assert len(result) == 1
        assert result[0].video is not None
