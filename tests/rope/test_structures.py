"""Unit tests for the rope record and access control (Fig. 8)."""

import pytest

from repro.errors import AccessDenied, IntervalError
from repro.rope.intervals import MediaTrack, Segment, Trigger
from repro.rope.structures import Media, MultimediaRope


def segment(seconds=10.0):
    return Segment(
        video=MediaTrack("V1", 0, int(30 * seconds), 30.0, 4),
        audio=MediaTrack("A1", 0, int(8000 * seconds), 8000.0, 2048),
    )


def make_rope(**kwargs):
    defaults = dict(
        rope_id="R1", creator="venkat", segments=(segment(),),
    )
    defaults.update(kwargs)
    return MultimediaRope(**defaults)


class TestMedia:
    def test_selectors(self):
        assert Media.VIDEO.includes_video
        assert not Media.VIDEO.includes_audio
        assert Media.AUDIO.includes_audio
        assert Media.AUDIO_VISUAL.includes_video
        assert Media.AUDIO_VISUAL.includes_audio


class TestRopeRecord:
    def test_duration_is_fig8_length(self):
        rope = make_rope(segments=(segment(10.0), segment(5.0)))
        assert rope.duration == pytest.approx(15.0)

    def test_media_presence(self):
        rope = make_rope()
        assert rope.has_video
        assert rope.has_audio
        audio_only = make_rope(
            segments=(
                Segment(audio=MediaTrack("A1", 0, 8000, 8000.0, 2048)),
            )
        )
        assert not audio_only.has_video

    def test_referenced_strands(self):
        rope = make_rope()
        assert rope.referenced_strands() == {"V1", "A1"}

    def test_empty_rope_rejected(self):
        with pytest.raises(IntervalError):
            make_rope(segments=())

    def test_with_segments_copies(self):
        rope = make_rope()
        updated = rope.with_segments((segment(5.0),))
        assert updated.rope_id == rope.rope_id
        assert updated.duration == pytest.approx(5.0)
        assert rope.duration == pytest.approx(10.0)  # original intact

    def test_interval_count(self):
        rope = make_rope(segments=(segment(), segment(), segment()))
        assert rope.interval_count() == 3


class TestAccessControl:
    def test_creator_always_allowed(self):
        rope = make_rope()
        rope.check_play("venkat")
        rope.check_edit("venkat")

    def test_play_access_list(self):
        rope = make_rope(play_access=("harrick",))
        rope.check_play("harrick")
        with pytest.raises(AccessDenied):
            rope.check_play("mallory")

    def test_edit_access_implies_play(self):
        rope = make_rope(edit_access=("harrick",))
        rope.check_play("harrick")
        rope.check_edit("harrick")

    def test_play_access_does_not_imply_edit(self):
        rope = make_rope(play_access=("harrick",))
        with pytest.raises(AccessDenied):
            rope.check_edit("harrick")


class TestTriggers:
    def test_triggers_preserved_through_slice(self):
        trigger = Trigger(video_block=1, audio_block=1, text="slide 1")
        seg = Segment(
            video=MediaTrack("V1", 0, 300, 30.0, 4),
            triggers=(trigger,),
        )
        part = seg.slice(0.0, 5.0)
        assert part.triggers == (trigger,)
