"""Unit tests for strand-interval algebra."""

import pytest

from repro.errors import IntervalError, ParameterError
from repro.rope.intervals import (
    MediaTrack,
    Segment,
    delete_range,
    slice_segments,
    splice_segments,
    total_duration,
)


def video_track(length_units=300, start=0, rate=30.0, strand="V1"):
    return MediaTrack(
        strand_id=strand, start_unit=start, length_units=length_units,
        rate=rate, granularity=4,
    )


def audio_track(length_units=80000, start=0, rate=8000.0, strand="A1"):
    return MediaTrack(
        strand_id=strand, start_unit=start, length_units=length_units,
        rate=rate, granularity=2048,
    )


def av_segment(seconds=10.0):
    return Segment(
        video=video_track(int(30 * seconds)),
        audio=audio_track(int(8000 * seconds)),
    )


class TestMediaTrack:
    def test_duration(self):
        assert video_track(300).duration == pytest.approx(10.0)

    def test_block_coordinates(self):
        track = video_track(length_units=10, start=6)
        assert track.first_block == 1   # unit 6 in block 1 (g=4)
        assert track.last_block == 3    # unit 15 in block 3
        assert track.end_unit == 16

    def test_slice_basic(self):
        track = video_track(300)
        part = track.slice(2.0, 3.0)
        assert part.start_unit == 60
        assert part.length_units == 90
        assert part.duration == pytest.approx(3.0)

    def test_slice_clamps_to_interval(self):
        track = video_track(300)
        part = track.slice(9.5, 100.0)
        assert part.end_unit <= track.end_unit
        assert part.length_units >= 1

    def test_slice_rejects_empty(self):
        with pytest.raises(IntervalError):
            video_track().slice(0.0, 0.0)

    def test_validation(self):
        with pytest.raises(IntervalError):
            MediaTrack("V", -1, 10, 30.0, 4)
        with pytest.raises(IntervalError):
            MediaTrack("V", 0, 0, 30.0, 4)
        with pytest.raises(ParameterError):
            MediaTrack("V", 0, 10, 0.0, 4)


class TestSegment:
    def test_duration_video_governs(self):
        segment = av_segment(10.0)
        assert segment.duration == pytest.approx(10.0)

    def test_audio_only_duration(self):
        segment = Segment(audio=audio_track(16000))
        assert segment.duration == pytest.approx(2.0)

    def test_needs_a_track(self):
        with pytest.raises(IntervalError):
            Segment()

    def test_correspondence(self):
        segment = Segment(
            video=video_track(start=8), audio=audio_track(start=4096)
        )
        assert segment.correspondence == (2, 2)

    def test_strand_ids(self):
        assert av_segment().strand_ids() == ["V1", "A1"]

    def test_slice_cuts_both_tracks(self):
        segment = av_segment(10.0)
        part = segment.slice(2.0, 4.0)
        assert part.video.duration == pytest.approx(4.0)
        assert part.audio.duration == pytest.approx(4.0)
        assert part.video.start_unit == 60
        assert part.audio.start_unit == 16000


class TestSliceSegments:
    def test_within_one_segment(self):
        segments = [av_segment(10.0)]
        result = slice_segments(segments, 2.0, 5.0)
        assert len(result) == 1
        assert total_duration(result) == pytest.approx(5.0)

    def test_across_segments(self):
        segments = [av_segment(10.0), av_segment(10.0)]
        result = slice_segments(segments, 8.0, 4.0)
        assert len(result) == 2
        assert total_duration(result) == pytest.approx(4.0)

    def test_whole_extent(self):
        segments = [av_segment(10.0), av_segment(5.0)]
        result = slice_segments(segments, 0.0, 15.0)
        assert total_duration(result) == pytest.approx(15.0)

    def test_beyond_end_rejected(self):
        with pytest.raises(IntervalError):
            slice_segments([av_segment(10.0)], 5.0, 10.0)

    def test_zero_length_rejected(self):
        with pytest.raises(IntervalError):
            slice_segments([av_segment(10.0)], 0.0, 0.0)


class TestSpliceSegments:
    def test_insert_at_start(self):
        base = [av_segment(10.0)]
        insertion = [av_segment(5.0)]
        result = splice_segments(base, 0.0, insertion)
        assert len(result) == 2
        assert total_duration(result) == pytest.approx(15.0)
        assert result[0] is insertion[0]

    def test_insert_at_end(self):
        base = [av_segment(10.0)]
        result = splice_segments(base, 10.0, [av_segment(5.0)])
        assert len(result) == 2
        assert result[1].duration == pytest.approx(5.0)

    def test_insert_mid_segment_splits(self):
        base = [av_segment(10.0)]
        result = splice_segments(base, 4.0, [av_segment(5.0)])
        assert len(result) == 3
        assert result[0].duration == pytest.approx(4.0)
        assert result[1].duration == pytest.approx(5.0)
        assert result[2].duration == pytest.approx(6.0)
        assert total_duration(result) == pytest.approx(15.0)

    def test_insert_at_boundary_no_split(self):
        base = [av_segment(10.0), av_segment(10.0)]
        result = splice_segments(base, 10.0, [av_segment(5.0)])
        assert len(result) == 3
        assert result[1].duration == pytest.approx(5.0)

    def test_beyond_end_rejected(self):
        with pytest.raises(IntervalError):
            splice_segments([av_segment(10.0)], 11.0, [av_segment(1.0)])


class TestDeleteRange:
    def test_delete_inside_segment(self):
        result = delete_range([av_segment(10.0)], 3.0, 4.0)
        assert len(result) == 2
        assert total_duration(result) == pytest.approx(6.0)

    def test_delete_prefix(self):
        result = delete_range([av_segment(10.0)], 0.0, 4.0)
        assert len(result) == 1
        assert total_duration(result) == pytest.approx(6.0)
        # The surviving interval starts 4 s into the strand.
        assert result[0].video.start_unit == 120

    def test_delete_across_boundary(self):
        result = delete_range([av_segment(10.0), av_segment(10.0)], 8.0, 4.0)
        assert total_duration(result) == pytest.approx(16.0)

    def test_delete_whole_segment(self):
        result = delete_range([av_segment(10.0), av_segment(5.0)], 10.0, 5.0)
        assert len(result) == 1
        assert total_duration(result) == pytest.approx(10.0)

    def test_delete_everything_rejected(self):
        with pytest.raises(IntervalError):
            delete_range([av_segment(10.0)], 0.0, 10.0)
