"""Unit tests for the Multimedia Rope Server (§4.1, §5.2)."""

import pytest

from repro.errors import (
    AccessDenied,
    AdmissionRejected,
    IntervalError,
    ParameterError,
    RequestStateError,
    UnknownRequestError,
    UnknownRopeError,
)
from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import Media, RequestKind, RequestState


@pytest.fixture
def frames(profile):
    return frames_for_duration(profile.video, 8.0, source="cam")


@pytest.fixture
def chunks(profile, rng):
    return generate_talk_spurts(profile.audio, 8.0, 0.3, rng)


@pytest.fixture
def recorded(mrs, frames, chunks):
    request_id, rope_id = mrs.record("venkat", frames=frames, chunks=chunks)
    mrs.stop(request_id)
    return rope_id


class TestRecord:
    def test_record_returns_request_and_rope(self, mrs, frames):
        request_id, rope_id = mrs.record("venkat", frames=frames)
        assert mrs.get_request(request_id).kind is RequestKind.RECORD
        rope = mrs.get_rope(rope_id)
        assert rope.creator == "venkat"
        assert rope.duration == pytest.approx(8.0)
        mrs.stop(request_id)

    def test_record_both_media_one_segment(self, mrs, recorded):
        rope = mrs.get_rope(recorded)
        assert rope.interval_count() == 1
        assert rope.has_video and rope.has_audio

    def test_record_heterogeneous(self, mrs, frames, chunks):
        request_id, rope_id = mrs.record(
            "venkat", frames=frames, chunks=chunks, heterogeneous=True
        )
        mrs.stop(request_id)
        rope = mrs.get_rope(rope_id)
        assert rope.has_video

    def test_record_registers_interests(self, msm, mrs, recorded):
        rope = mrs.get_rope(recorded)
        for strand_id in rope.referenced_strands():
            assert msm.interests.is_referenced(strand_id)

    def test_record_requires_media(self, mrs):
        with pytest.raises(ParameterError):
            mrs.record("venkat")

    def test_record_is_admission_controlled(self, mrs, frames):
        issued = []
        with pytest.raises(AdmissionRejected):
            for _ in range(50):
                request_id, _ = mrs.record("venkat", frames=frames[:30])
                issued.append(request_id)
        assert issued  # some recordings were admitted before the limit


class TestPlayStop:
    def test_play_returns_request(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        request = mrs.get_request(request_id)
        assert request.kind is RequestKind.PLAY
        assert request.state is RequestState.ACTIVE

    def test_play_checks_access(self, mrs, frames):
        request_id, rope_id = mrs.record("venkat", frames=frames)
        mrs.stop(request_id)
        with pytest.raises(AccessDenied):
            mrs.play("mallory", rope_id)

    def test_play_rejects_empty_interval(self, mrs, recorded):
        with pytest.raises(IntervalError):
            mrs.play("venkat", recorded, start=8.0)

    def test_stop_releases_admission(self, msm, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        active_before = msm.admission.active_count
        mrs.stop(request_id)
        assert msm.admission.active_count == active_before - 1
        assert mrs.get_request(request_id).state is RequestState.STOPPED

    def test_double_stop_rejected(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        mrs.stop(request_id)
        with pytest.raises(RequestStateError):
            mrs.stop(request_id)

    def test_unknown_ids(self, mrs):
        with pytest.raises(UnknownRopeError):
            mrs.get_rope("R9999")
        with pytest.raises(UnknownRequestError):
            mrs.get_request("Q9999")


class TestPauseResume:
    def test_non_destructive_pause_keeps_resources(self, msm, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        active = msm.admission.active_count
        mrs.pause(request_id)
        assert msm.admission.active_count == active
        mrs.resume(request_id)
        assert mrs.get_request(request_id).state is RequestState.ACTIVE

    def test_destructive_pause_releases(self, msm, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        active = msm.admission.active_count
        mrs.pause(request_id, destructive=True)
        assert msm.admission.active_count == active - 1
        mrs.resume(request_id)  # re-admits
        assert msm.admission.active_count == active

    def test_resume_after_destructive_pause_may_reject(
        self, msm, mrs, recorded
    ):
        first = mrs.play("venkat", recorded, media=Media.VIDEO)
        mrs.pause(first, destructive=True)
        # Fill the server to capacity while first is paused.
        others = []
        try:
            for _ in range(20):
                others.append(
                    mrs.play("venkat", recorded, media=Media.VIDEO)
                )
        except AdmissionRejected:
            pass
        with pytest.raises(AdmissionRejected):
            mrs.resume(first)
        assert mrs.get_request(first).state is RequestState.PAUSED_RELEASED

    def test_pause_requires_active(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        mrs.pause(request_id)
        with pytest.raises(RequestStateError):
            mrs.pause(request_id)

    def test_resume_requires_paused(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded)
        with pytest.raises(RequestStateError):
            mrs.resume(request_id)


class TestEditingThroughServer:
    def test_insert_updates_rope(self, mrs, frames, chunks):
        q1, r1 = mrs.record("venkat", frames=frames, chunks=chunks)
        mrs.stop(q1)
        q2, r2 = mrs.record("venkat", frames=frames, chunks=chunks)
        mrs.stop(q2)
        result = mrs.insert(
            "venkat", r1, 4.0, Media.AUDIO_VISUAL, r2, 0.0, 8.0
        )
        assert result.duration == pytest.approx(16.0)
        assert mrs.get_rope(r1).duration == pytest.approx(16.0)

    def test_edit_requires_edit_access(self, mrs, frames):
        q1, r1 = mrs.record(
            "venkat", frames=frames, play_access=("harrick",)
        )
        mrs.stop(q1)
        with pytest.raises(AccessDenied):
            mrs.delete("harrick", r1, Media.AUDIO_VISUAL, 0.0, 1.0)

    def test_substring_creates_new_rope(self, mrs, recorded):
        result = mrs.substring(
            "venkat", recorded, Media.AUDIO_VISUAL, 1.0, 3.0
        )
        assert result.rope_id != recorded
        assert result.duration == pytest.approx(3.0)
        assert result.creator == "venkat"

    def test_edits_sync_interests(self, msm, mrs, frames, chunks):
        q1, r1 = mrs.record("venkat", frames=frames, chunks=chunks)
        mrs.stop(q1)
        rope = mrs.get_rope(r1)
        # Delete audio everywhere: its strand loses this rope's interest.
        audio_strand = rope.segments[0].audio.strand_id
        mrs.delete("venkat", r1, Media.AUDIO, 0.0, rope.duration)
        assert not msm.interests.is_referenced(audio_strand)

    def test_delete_rope_collects_strands(self, msm, mrs, recorded):
        strands = set(mrs.get_rope(recorded).referenced_strands())
        reclaimed = mrs.delete_rope("venkat", recorded)
        assert strands.issubset(set(reclaimed))
        with pytest.raises(UnknownRopeError):
            mrs.get_rope(recorded)

    def test_shared_strands_survive_rope_deletion(self, mrs, msm, recorded):
        sub = mrs.substring("venkat", recorded, Media.VIDEO, 0.0, 4.0)
        reclaimed = mrs.delete_rope("venkat", recorded)
        shared = mrs.get_rope(sub.rope_id).referenced_strands()
        assert not shared.intersection(reclaimed)


class TestAdoptStrands:
    def test_adopt_builds_rope(self, msm, mrs, frames):
        strand = msm.store_video_strand(frames)
        rope_id = mrs.adopt_strands("venkat", video_strand_id=strand.strand_id)
        rope = mrs.get_rope(rope_id)
        assert rope.duration == pytest.approx(8.0)
        assert msm.interests.is_referenced(strand.strand_id)

    def test_adopt_requires_a_strand(self, mrs):
        with pytest.raises(ParameterError):
            mrs.adopt_strands("venkat")


class TestPlaybackPlan:
    def test_plan_covers_interval(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded, start=2.0, length=4.0)
        plan = mrs.playback_plan(request_id)
        assert plan.video_duration == pytest.approx(4.0, abs=0.15)
        assert plan.audio_duration == pytest.approx(4.0, abs=0.3)

    def test_video_only_plan(self, mrs, recorded):
        request_id = mrs.play("venkat", recorded, media=Media.VIDEO)
        plan = mrs.playback_plan(request_id)
        assert plan.video
        assert not plan.audio

    def test_tokens_round_trip(self, mrs, frames):
        q, rope_id = mrs.record("venkat", frames=frames)
        mrs.stop(q)
        request_id = mrs.play("venkat", rope_id)
        plan = mrs.playback_plan(request_id)
        assert plan.tokens() == [f.token for f in frames]

    def test_edited_rope_tokens(self, mrs, frames, profile):
        other = frames_for_duration(profile.video, 4.0, source="ins")
        q1, r1 = mrs.record("venkat", frames=frames)
        mrs.stop(q1)
        q2, r2 = mrs.record("venkat", frames=other)
        mrs.stop(q2)
        mrs.insert("venkat", r1, 2.0, Media.VIDEO, r2, 0.0, 4.0)
        request_id = mrs.play("venkat", r1)
        tokens = mrs.playback_plan(request_id).tokens()
        expected = (
            [f.token for f in frames[:60]]
            + [f.token for f in other]
            + [f.token for f in frames[60:]]
        )
        assert tokens == expected

    def test_silence_fetches_have_no_slot(self, mrs, profile, rng):
        chunks = generate_talk_spurts(profile.audio, 20.0, 0.6, rng)
        q, rope_id = mrs.record("venkat", chunks=chunks)
        mrs.stop(q)
        request_id = mrs.play("venkat", rope_id, media=Media.AUDIO)
        plan = mrs.playback_plan(request_id)
        assert any(f.slot is None for f in plan.audio)
        assert any(f.slot is not None for f in plan.audio)
        # Silence still buys playback time.
        assert plan.audio_duration == pytest.approx(20.0, abs=1.0)
