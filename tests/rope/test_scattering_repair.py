"""Unit tests for the §4.2 seam-repair algorithm."""

import pytest

from repro.config import TESTBED_1991
from repro.core.editing_bounds import copy_bound_dense
from repro.core.symbols import DisplayDeviceParameters
from repro.disk import build_drive
from repro.fs import MultimediaStorageManager
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.rope.scattering_repair import ScatteringRepairer


@pytest.fixture
def tight_msm():
    """An MSM whose video bound is below the drive's full-stroke access.

    A 2-frame device buffer forces granularity 1; the pipelined bound is
    then ~27 ms against a ~32 ms worst-case access, so cross-disk seams
    genuinely violate.
    """
    profile = TESTBED_1991
    drive = build_drive()
    narrow = DisplayDeviceParameters(
        display_rate=profile.video_device.display_rate, buffer_frames=2
    )
    return MultimediaStorageManager(
        drive, profile.video, profile.audio, narrow, profile.audio_device
    )


@pytest.fixture
def far_ropes(tight_msm):
    """Two video ropes stored at opposite ends of the disk."""
    profile = TESTBED_1991
    mrs = MultimediaRopeServer(tight_msm, auto_repair=False)
    early = tight_msm.store_video_strand(
        frames_for_duration(profile.video, 6.0, source="early"), hint=0
    )
    late = tight_msm.store_video_strand(
        frames_for_duration(profile.video, 6.0, source="late"),
        hint=tight_msm.drive.slots - 1,
    )
    rope_a = mrs.adopt_strands("u", video_strand_id=early.strand_id)
    rope_b = mrs.adopt_strands("u", video_strand_id=late.strand_id)
    return mrs, rope_a, rope_b


class TestSeamChecks:
    def test_far_seam_violates(self, tight_msm, far_ropes):
        mrs, rope_a, rope_b = far_ropes
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(tight_msm)
        checks = repairer.check_segments(merged.segments)
        assert len(checks) == 1
        assert checks[0].violates
        assert checks[0].medium is Media.VIDEO

    def test_near_seam_does_not_violate(self, tight_msm):
        profile = TESTBED_1991
        mrs = MultimediaRopeServer(tight_msm, auto_repair=False)
        a = tight_msm.store_video_strand(
            frames_for_duration(profile.video, 3.0, source="a"), hint=0
        )
        b = tight_msm.store_video_strand(
            frames_for_duration(profile.video, 3.0, source="b")
        )
        rope_a = mrs.adopt_strands("u", video_strand_id=a.strand_id)
        rope_b = mrs.adopt_strands("u", video_strand_id=b.strand_id)
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(tight_msm)
        checks = repairer.check_segments(merged.segments)
        assert all(not c.violates for c in checks)


class TestRepair:
    def test_repair_restores_continuity(self, tight_msm, far_ropes):
        mrs, rope_a, rope_b = far_ropes
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(tight_msm)
        segments, report = repairer.repair_segments(merged.segments)
        assert report.seams_violating == 1
        assert report.seams_repaired == 1
        assert report.residual_violations == 0
        after = repairer.check_segments(segments)
        assert all(not c.violates for c in after)

    def test_copies_respect_paper_bound(self, tight_msm, far_ropes):
        mrs, rope_a, rope_b = far_ropes
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(tight_msm)
        _, report = repairer.repair_segments(merged.segments)
        dense_bound = copy_bound_dense(
            tight_msm.disk_params.seek_max,
            tight_msm.policies.video.scattering_lower,
        )
        assert 1 <= report.blocks_copied <= dense_bound

    def test_repair_creates_new_strand(self, tight_msm, far_ropes):
        mrs, rope_a, rope_b = far_ropes
        before = set(tight_msm.strand_ids())
        merged = mrs.concate("u", rope_a, rope_b)
        repairer = ScatteringRepairer(tight_msm)
        segments, report = repairer.repair_segments(merged.segments)
        new_strands = set(tight_msm.strand_ids()) - before
        assert len(new_strands) == 1
        # The repaired rope references the copy strand.
        referenced = set()
        for segment in segments:
            referenced.update(segment.strand_ids())
        assert new_strands.issubset(referenced)

    def test_repair_preserves_playback_content(self, tight_msm, far_ropes):
        """Tokens after repair are identical — copying is transparent."""
        mrs, rope_a, rope_b = far_ropes
        merged = mrs.concate("u", rope_a, rope_b)
        request = mrs.play("u", rope_a, media=Media.VIDEO)
        expected = mrs.playback_plan(request).tokens()
        mrs.stop(request)
        repairer = ScatteringRepairer(tight_msm)
        segments, _ = repairer.repair_segments(merged.segments)
        mrs._install(merged.with_segments(segments))
        request = mrs.play("u", rope_a, media=Media.VIDEO)
        assert mrs.playback_plan(request).tokens() == expected

    def test_clean_rope_untouched(self, tight_msm):
        profile = TESTBED_1991
        mrs = MultimediaRopeServer(tight_msm, auto_repair=False)
        strand = tight_msm.store_video_strand(
            frames_for_duration(profile.video, 5.0, source="x")
        )
        rope_id = mrs.adopt_strands("u", video_strand_id=strand.strand_id)
        rope = mrs.get_rope(rope_id)
        repairer = ScatteringRepairer(tight_msm)
        segments, report = repairer.repair_segments(rope.segments)
        assert report.seams_repaired == 0
        assert report.blocks_copied == 0
        assert list(segments) == list(rope.segments)


class TestAutoRepairInServer:
    def test_concate_auto_repairs(self, tight_msm):
        profile = TESTBED_1991
        mrs = MultimediaRopeServer(tight_msm, auto_repair=True)
        early = tight_msm.store_video_strand(
            frames_for_duration(profile.video, 6.0, source="early"), hint=0
        )
        late = tight_msm.store_video_strand(
            frames_for_duration(profile.video, 6.0, source="late"),
            hint=tight_msm.drive.slots - 1,
        )
        rope_a = mrs.adopt_strands("u", video_strand_id=early.strand_id)
        rope_b = mrs.adopt_strands("u", video_strand_id=late.strand_id)
        merged = mrs.concate("u", rope_a, rope_b)
        assert mrs.last_repair is not None
        assert mrs.last_repair.seams_repaired == 1
        repairer = ScatteringRepairer(tight_msm)
        assert all(
            not c.violates
            for c in repairer.check_segments(merged.segments)
        )
