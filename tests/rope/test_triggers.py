"""Unit tests for Fig.-8 trigger information."""

import pytest

from repro.errors import IntervalError
from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.rope.intervals import MediaTrack, Segment, Trigger
from repro.rope.triggers import attach_trigger, trigger_schedule


def av_segment(seconds=10.0, v_start=0, a_start=0):
    return Segment(
        video=MediaTrack("V1", v_start, int(30 * seconds), 30.0, 4),
        audio=MediaTrack("A1", a_start, int(8000 * seconds), 8000.0, 2048),
    )


class TestAttachTrigger:
    def test_records_both_block_ids(self):
        segments = attach_trigger([av_segment()], 5.0, "slide 2")
        trigger = segments[0].triggers[0]
        # 5 s -> video unit 150 -> block 37; audio sample 40000 -> block 19.
        assert trigger.video_block == 37
        assert trigger.audio_block == 19
        assert trigger.text == "slide 2"

    def test_attaches_to_correct_segment(self):
        segments = [av_segment(10.0), av_segment(10.0, v_start=300)]
        updated = attach_trigger(segments, 12.0, "late")
        assert not updated[0].triggers
        assert updated[1].triggers[0].text == "late"

    def test_beyond_end_rejected(self):
        with pytest.raises(IntervalError):
            attach_trigger([av_segment(10.0)], 11.0, "x")

    def test_empty_text_rejected(self):
        with pytest.raises(IntervalError):
            attach_trigger([av_segment()], 1.0, "")

    def test_original_segments_untouched(self):
        segments = [av_segment()]
        attach_trigger(segments, 1.0, "x")
        assert not segments[0].triggers


class TestTriggerSchedule:
    def test_fires_at_block_start(self):
        segments = attach_trigger([av_segment()], 5.0, "cue")
        firings = trigger_schedule(segments)
        assert len(firings) == 1
        time, text = firings[0]
        # Snapped to the start of video block 37: unit 148 / 30 fps.
        assert time == pytest.approx(148 / 30)
        assert text == "cue"

    def test_sorted_by_time(self):
        segments = [av_segment()]
        for t, label in ((8.0, "late"), (2.0, "early"), (5.0, "mid")):
            segments = attach_trigger(segments, t, label)
        firings = trigger_schedule(segments)
        assert [text for _, text in firings] == ["early", "mid", "late"]

    def test_trigger_outside_edited_interval_is_silent(self):
        """Editing away a trigger's block edits away its firing."""
        segments = attach_trigger([av_segment(10.0)], 8.0, "cut me")
        # Keep only the first 5 seconds of the segment.
        kept = [segments[0].slice(0.0, 5.0)]
        assert trigger_schedule(kept) == []

    def test_trigger_offset_follows_interval_start(self):
        segments = attach_trigger([av_segment(10.0)], 8.0, "keep")
        tail = [segments[0].slice(6.0, 4.0)]
        firings = trigger_schedule(tail)
        assert len(firings) == 1
        assert firings[0][0] == pytest.approx(2.0, abs=0.2)


class TestServerIntegration:
    def test_add_and_schedule_through_server(self, mrs, profile):
        frames = frames_for_duration(profile.video, 10.0, source="trig")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        mrs.add_trigger("u", rope_id, 3.0, "chapter 1")
        mrs.add_trigger("u", rope_id, 7.0, "chapter 2")
        play_id = mrs.play("u", rope_id)
        firings = mrs.trigger_schedule(play_id)
        assert [text for _, text in firings] == ["chapter 1", "chapter 2"]
        assert firings[0][0] == pytest.approx(3.0, abs=0.2)

    def test_partial_play_shifts_offsets(self, mrs, profile):
        frames = frames_for_duration(profile.video, 10.0, source="trig2")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        mrs.add_trigger("u", rope_id, 6.0, "mid")
        play_id = mrs.play("u", rope_id, start=4.0, length=6.0)
        firings = mrs.trigger_schedule(play_id)
        assert len(firings) == 1
        assert firings[0][0] == pytest.approx(2.0, abs=0.2)

    def test_triggers_survive_insert(self, mrs, profile):
        """Editing preserves triggers attached to surviving intervals."""
        frames = frames_for_duration(profile.video, 10.0, source="trig3")
        q1, rope_a = mrs.record("u", frames=frames)
        mrs.stop(q1)
        q2, rope_b = mrs.record("u", frames=frames[:90])
        mrs.stop(q2)
        mrs.add_trigger("u", rope_a, 8.0, "finale")
        mrs.insert("u", rope_a, 2.0, Media.VIDEO, rope_b, 0.0, 3.0)
        play_id = mrs.play("u", rope_a)
        firings = mrs.trigger_schedule(play_id)
        assert [text for _, text in firings] == ["finale"]
        # Shifted right by the 3-second insertion.
        assert firings[0][0] == pytest.approx(11.0, abs=0.3)
