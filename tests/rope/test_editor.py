"""Unit tests for the editing-session backend (Fig. 12 analogue)."""

import pytest

from repro.errors import ParameterError, UnknownRopeError
from repro.media.frames import frames_for_duration
from repro.rope import EditingSession, Media


@pytest.fixture
def session(mrs, profile):
    session = EditingSession(mrs, user="venkat")
    for name, seconds in (("main", 20.0), ("clip", 8.0)):
        frames = frames_for_duration(profile.video, seconds, source=name)
        request_id, rope_id = mrs.record("venkat", frames=frames)
        mrs.stop(request_id)
        session.open(name, rope_id)
    return session


class TestNaming:
    def test_open_and_lookup(self, session):
        assert session.names() == ["clip", "main"]
        assert session.rope("main").duration == pytest.approx(20.0)

    def test_unknown_name(self, session):
        with pytest.raises(UnknownRopeError):
            session.rope("nope")


class TestOperations:
    def test_insert(self, session):
        session.insert("main", 10.0, "clip", 0.0, 8.0)
        assert session.rope("main").duration == pytest.approx(28.0)
        assert session.log[-1].operation == "INSERT"

    def test_delete(self, session):
        session.delete("main", 0.0, 5.0)
        assert session.rope("main").duration == pytest.approx(15.0)

    def test_substring_binds_new_name(self, session):
        session.substring("main", "excerpt", 2.0, 6.0)
        assert session.rope("excerpt").duration == pytest.approx(6.0)

    def test_substring_name_collision(self, session):
        with pytest.raises(ParameterError):
            session.substring("main", "clip", 0.0, 1.0)

    def test_concate(self, session):
        session.concate("main", "clip")
        assert session.rope("main").duration == pytest.approx(28.0)

    def test_replace(self, session):
        session.replace(
            "main", Media.VIDEO, 0.0, 8.0, "clip", 0.0, 8.0
        )
        assert session.rope("main").duration == pytest.approx(20.0)


class TestUndo:
    def test_undo_restores_segments(self, session):
        before = session.rope("main").segments
        session.insert("main", 10.0, "clip", 0.0, 8.0)
        assert session.undo() == "INSERT"
        assert session.rope("main").segments == before

    def test_undo_stack_order(self, session):
        session.insert("main", 10.0, "clip", 0.0, 8.0)
        session.delete("main", 0.0, 2.0)
        assert session.undo() == "DELETE"
        assert session.undo() == "INSERT"
        assert session.rope("main").duration == pytest.approx(20.0)

    def test_undo_empty(self, session):
        assert session.undo() is None

    def test_undo_skips_substring(self, session):
        session.substring("main", "excerpt", 0.0, 2.0)
        assert session.undo() is None  # nothing undoable


class TestStatus:
    def test_status_fields(self, session):
        status = session.status("main")
        assert status["length"] == "20.00 sec"
        assert status["play_status"] == "idle"
        assert status["percentage_played"] == "0%"
        assert status["intervals"] == "1"

    def test_status_reflects_playback(self, session, mrs):
        rope_id = session.rope("main").rope_id
        mrs.play("venkat", rope_id)
        status = session.status("main", played_seconds=5.0)
        assert status["play_status"] == "playing"
        assert status["percentage_played"] == "25%"
