"""Integration: the controller's transition plans drive the session."""

import pytest

from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession, staged_k_schedule


class TestStagedTransitionThroughSession:
    def test_admission_decisions_drive_a_staged_session(
        self, mrs, msm, profile
    ):
        """Admit requests one by one, execute each decision's staged plan
        through the real session API, and verify continuity throughout."""
        frames = frames_for_duration(profile.video, 6.0, source="stg")
        record_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(record_id)

        first = mrs.play("u", rope_id, media=Media.VIDEO)
        k_after_first = msm.admission.current_k
        second = mrs.play("u", rope_id, media=Media.VIDEO)
        k_after_second = msm.admission.current_k
        assert k_after_second >= k_after_first

        # Build the staged schedule the paper prescribes: start at the
        # pre-admission k and grow by one per round up to the new value.
        admission_round = 2
        steps = [
            (admission_round + i, k)
            for i, k in enumerate(
                range(k_after_first + 1, k_after_second + 1)
            )
        ]
        schedule = staged_k_schedule(max(1, k_after_first), steps)
        join_round = admission_round + max(
            0, k_after_second - k_after_first
        )
        session = PlaybackSession(mrs)
        result = session.run(
            [first],
            admissions=[(join_round, second)],
            k_schedule=schedule,
        )
        assert result.all_continuous

    def test_transition_plan_matches_current_k(self, mrs, msm, profile):
        frames = frames_for_duration(profile.video, 4.0, source="stg2")
        record_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(record_id)
        controller = msm.admission
        k_values = []
        for _ in range(3):
            mrs.play("u", rope_id, media=Media.VIDEO)
            k_values.append(controller.current_k)
        # k never decreases as requests accumulate.
        assert k_values == sorted(k_values)


class TestTableSeekDrive:
    def test_full_stack_on_a_datasheet_drive(self, profile):
        """A drive built from a measured (table) seek curve works through
        placement, storage, and playback."""
        from repro.disk import TESTBED_DRIVE, FreeMap, SimulatedDrive
        from repro.disk.seek import Rotation, TableSeek
        from repro.fs import MultimediaStorageManager
        from repro.media.frames import frames_for_duration
        from repro.rope import MultimediaRopeServer
        from repro.service import PlaybackSession

        drive = SimulatedDrive(
            geometry=TESTBED_DRIVE.geometry(),
            seek_model=TableSeek(
                [(1, 0.004), (64, 0.008), (256, 0.014), (1023, 0.024)]
            ),
            rotation=Rotation(rpm=3600),
            transfer_rate=TESTBED_DRIVE.transfer_rate,
            sectors_per_block=64,
        )
        msm = MultimediaStorageManager(
            drive, profile.video, profile.audio,
            profile.video_device, profile.audio_device,
        )
        mrs = MultimediaRopeServer(msm)
        frames = frames_for_duration(profile.video, 6.0, source="table")
        record_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(record_id)
        strand = msm.get_strand(
            next(iter(mrs.get_rope(rope_id).referenced_strands()))
        )
        slots = strand.slots()
        for a, b in zip(slots, slots[1:]):
            assert drive.access_gap(a, b) <= (
                msm.policies.video.scattering_upper + 1e-12
            )
        play_id = mrs.play("u", rope_id, media=Media.VIDEO)
        result = PlaybackSession(mrs).run([play_id], k=4)
        assert result.all_continuous
