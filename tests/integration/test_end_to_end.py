"""Integration tests: record → edit → play across the whole stack."""

import pytest

from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession


class TestRecordEditPlay:
    def test_full_lifecycle(self, mrs, msm, profile, rng):
        """The §5 prototype's workflow, end to end."""
        # 1. Record two clips (video + silence-eliminated audio).
        frames_a = frames_for_duration(profile.video, 12.0, source="lecA")
        chunks_a = generate_talk_spurts(profile.audio, 12.0, 0.35, rng)
        qa, rope_a = mrs.record("venkat", frames=frames_a, chunks=chunks_a)
        mrs.stop(qa)
        frames_b = frames_for_duration(profile.video, 6.0, source="lecB")
        chunks_b = generate_talk_spurts(profile.audio, 6.0, 0.35, rng)
        qb, rope_b = mrs.record("venkat", frames=frames_b, chunks=chunks_b)
        mrs.stop(qb)

        # 2. Edit: insert B into A, trim the result.
        mrs.insert(
            "venkat", rope_a, 6.0, Media.AUDIO_VISUAL, rope_b, 0.0, 6.0
        )
        mrs.delete("venkat", rope_a, Media.AUDIO_VISUAL, 0.0, 2.0)
        edited = mrs.get_rope(rope_a)
        assert edited.duration == pytest.approx(16.0)

        # 3. Play the edited rope; verify content order and continuity.
        request_id = mrs.play("venkat", rope_a, media=Media.VIDEO)
        plan = mrs.playback_plan(request_id)
        tokens = plan.tokens()
        expected = (
            [f.token for f in frames_a[60:180]]
            + [f.token for f in frames_b]
            + [f.token for f in frames_a[180:]]
        )
        assert tokens == expected
        session = PlaybackSession(mrs)
        result = session.run([request_id], k=4)
        assert result.all_continuous

        # 4. Cleanup: deleting the ropes reclaims all media storage.
        mrs.delete_rope("venkat", rope_a)
        mrs.delete_rope("venkat", rope_b)
        assert msm.strand_ids() == []
        assert msm.occupancy == 0.0

    def test_concurrent_playback_at_capacity(self, mrs, profile):
        """Admit to the limit; every admitted stream plays clean."""
        frames = frames_for_duration(profile.video, 8.0, source="pop")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        admitted = []
        from repro.errors import AdmissionRejected
        try:
            for _ in range(20):
                admitted.append(
                    mrs.play("u", rope_id, media=Media.VIDEO)
                )
        except AdmissionRejected:
            pass
        assert 1 <= len(admitted) <= 19
        session = PlaybackSession(mrs)
        result = session.run(admitted)
        assert result.all_continuous

    def test_pause_resume_cycle_with_playback(self, mrs, profile):
        frames = frames_for_duration(profile.video, 6.0, source="pr")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        play_id = mrs.play("u", rope_id, media=Media.VIDEO)
        mrs.pause(play_id, destructive=True)
        mrs.resume(play_id)
        session = PlaybackSession(mrs)
        result = session.run([play_id], k=4)
        assert result.metrics[play_id].continuous

    def test_shared_interval_playback_after_source_deleted(
        self, mrs, msm, profile
    ):
        """A substring keeps shared strands alive and playable after the
        original rope is deleted (the Etherphone sharing model)."""
        frames = frames_for_duration(profile.video, 10.0, source="src")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        excerpt = mrs.substring("u", rope_id, Media.VIDEO, 3.0, 4.0)
        mrs.delete_rope("u", rope_id)
        play_id = mrs.play("u", excerpt.rope_id)
        tokens = mrs.playback_plan(play_id).tokens()
        assert tokens == [f.token for f in frames[90:210]]

    def test_heterogeneous_rope_playback(self, mrs, profile, rng):
        frames = frames_for_duration(profile.video, 6.0, source="het")
        chunks = generate_talk_spurts(profile.audio, 6.0, 0.2, rng)
        request_id, rope_id = mrs.record(
            "u", frames=frames, chunks=chunks, heterogeneous=True
        )
        mrs.stop(request_id)
        play_id = mrs.play("u", rope_id)
        plan = mrs.playback_plan(play_id)
        assert plan.tokens() == [f.token for f in frames]
        session = PlaybackSession(mrs)
        assert session.run([play_id], k=4).all_continuous


class TestAnalysisVsSimulation:
    def test_admitted_sets_simulate_continuously(self, mrs, profile):
        """The central claim: whatever the §3.4 controller admits, the
        §3.4 service loop plays without a single deadline miss."""
        frames = frames_for_duration(profile.video, 6.0, source="load")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        from repro.errors import AdmissionRejected
        admitted = []
        session = PlaybackSession(mrs)
        while True:
            try:
                admitted.append(mrs.play("u", rope_id, media=Media.VIDEO))
            except AdmissionRejected:
                break
            result = session.run(list(admitted))
            assert result.all_continuous, (
                f"misses with {len(admitted)} admitted streams at "
                f"k={result.k_used}"
            )

    def test_buffer_highwater_within_paper_bound(self, mrs, profile):
        """Pipelined service must never need more than 2k buffers."""
        frames = frames_for_duration(profile.video, 8.0, source="buf")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        play_id = mrs.play("u", rope_id, media=Media.VIDEO)
        session = PlaybackSession(mrs)
        k = 4
        result = session.run([play_id], k=k)
        assert result.metrics[play_id].buffer_high_water <= 2 * k
