"""Chaos integration tests: end-to-end playback under scripted faults.

The paper's continuity guarantee is proved on a healthy disk; these tests
pin down what the stack does when the disk is not healthy — bounded
retries recover transients, latent sector errors become exactly one
recorded glitch each, a dead head degrades service and freezes admission,
and the whole history replays bit-identically from its seed.
"""

import pytest

from repro.errors import AdmissionRejected
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession
from repro.sim.trace import Tracer

SEED = 20260806


def _recorded_play(mrs, profile, seconds=8.0, source="chaos"):
    frames = frames_for_duration(profile.video, seconds, source=source)
    request_id, rope_id = mrs.record("u", frames=frames)
    mrs.stop(request_id)
    return mrs.play("u", rope_id, media=Media.VIDEO), rope_id


def _video_slots(mrs, play_id):
    return [
        fetch.slot
        for fetch in mrs.playback_plan(play_id).video
        if fetch.slot is not None
    ]


class TestChaosPlayback:
    def test_glitches_only_on_faulted_blocks(self, mrs, profile):
        """Transients recover inside the budget; each defect is exactly
        one skip; no healthy block glitches."""
        play_id, _ = _recorded_play(mrs, profile)
        slots = _video_slots(mrs, play_id)
        plan = FaultPlan.random(
            seed=SEED, slots=slots, transient=6, defects=3
        )
        mrs.msm.drive.attach_injector(FaultInjector(plan))
        tracer = Tracer()
        session = PlaybackSession(
            mrs, tracer=tracer, recovery=RecoveryPolicy(retry_budget=2)
        )
        result = session.run([play_id], k=4)
        metrics = result.metrics[play_id]
        assert metrics.skips == 3
        assert metrics.misses == metrics.skips, (
            "a block that was never faulted missed its deadline"
        )
        assert metrics.blocks_delivered == len(slots) - 3
        stats = mrs.msm.drive.stats
        assert stats.faults_injected == 9
        assert stats.degraded_reads == 6
        assert stats.retries == 6
        counts = tracer.counts_by_tag()
        assert counts["fault.inject"] == 9
        assert counts["fault.retry"] == 6
        assert counts["fault.skip"] == 3
        assert counts["fault.degrade"] == 6

    def test_same_seed_replays_byte_identical(self, profile):
        """Deterministic replay: identical seeds, identical summaries."""

        def run_once():
            import random

            from repro.disk import build_drive
            from repro.fs import MultimediaStorageManager
            from repro.rope import MultimediaRopeServer

            drive = build_drive()
            msm = MultimediaStorageManager(
                drive,
                profile.video,
                profile.audio,
                profile.video_device,
                profile.audio_device,
            )
            mrs = MultimediaRopeServer(msm)
            play_id, _ = _recorded_play(mrs, profile)
            slots = _video_slots(mrs, play_id)
            plan = FaultPlan.random(
                seed=SEED, slots=slots, transient=4, defects=2
            )
            drive.attach_injector(FaultInjector(plan))
            session = PlaybackSession(
                mrs, recovery=RecoveryPolicy(retry_budget=1)
            )
            result = session.run([play_id], k=4)
            return result.summary()

        assert run_once() == run_once()

    def test_healthy_rerun_of_same_workload_is_glitch_free(
        self, mrs, profile
    ):
        """With injection disabled the identical workload reports zero
        misses — the glitches really were the faults' doing."""
        play_id, _ = _recorded_play(mrs, profile)
        result = PlaybackSession(mrs).run([play_id], k=4)
        assert result.all_continuous
        assert result.total_skips == 0
        assert mrs.msm.drive.stats.faults_injected == 0

    def test_head_failure_degrades_and_freezes_admission(
        self, mrs, profile
    ):
        """A dead head mid-round: remaining blocks glitch, n_max shrinks
        to zero, and new PLAY requests are refused."""
        play_id, rope_id = _recorded_play(mrs, profile)
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.HEAD_FAILURE, at_op=30)]
        )
        mrs.msm.drive.attach_injector(FaultInjector(plan))
        result = PlaybackSession(mrs).run([play_id], k=4)
        metrics = result.metrics[play_id]
        assert result.head_failure is not None
        assert result.degraded_n_max == 0
        assert metrics.blocks_delivered == 30
        assert metrics.skips == len(_video_slots(mrs, play_id)) - 30
        with pytest.raises(AdmissionRejected):
            mrs.play("u", rope_id, media=Media.VIDEO)

    @pytest.mark.chaos
    def test_multi_stream_chaos_soak(self, mrs, profile):
        """Several admitted streams under a dense seeded fault mix: the
        service stays live, glitch accounting balances, and only faulted
        blocks glitch."""
        play_a, rope_id = _recorded_play(mrs, profile, source="soakA")
        play_b = mrs.play("u", rope_id, media=Media.VIDEO)
        play_c = mrs.play("u", rope_id, media=Media.VIDEO)
        slots = _video_slots(mrs, play_a)
        plan = FaultPlan.random(
            seed=SEED + 1, slots=slots, transient=10, defects=6
        )
        mrs.msm.drive.attach_injector(FaultInjector(plan))
        tracer = Tracer()
        session = PlaybackSession(
            mrs, tracer=tracer, recovery=RecoveryPolicy(retry_budget=3)
        )
        result = session.run([play_a, play_b, play_c], k=4)
        # Every stream reads the same 6 defective slots; transients fire
        # once each, against whichever stream touches the slot first.
        assert result.total_skips == 3 * 6
        assert result.total_misses == result.total_skips
        stats = mrs.msm.drive.stats
        assert stats.faults_injected == 10 + 3 * 6
        assert stats.degraded_reads == 10
        injector = mrs.msm.drive.injector
        assert injector.injected == stats.faults_injected
        assert injector.pending_transients == 0
