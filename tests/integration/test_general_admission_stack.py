"""Integration: the general admission controller through the full stack."""

import pytest

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.errors import AdmissionRejected
from repro.fs import MultimediaStorageManager
from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer
from repro.service import PlaybackSession


def build_servers(general: bool):
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(), profile.video, profile.audio,
        profile.video_device, profile.audio_device,
        general_admission=general,
    )
    return msm, MultimediaRopeServer(msm)


def record_catalogue(mrs, profile, rng):
    frames = frames_for_duration(profile.video, 6.0, source="v")
    chunks = generate_talk_spurts(profile.audio, 6.0, 0.3, rng)
    qv, video_rope = mrs.record("u", frames=frames)
    mrs.stop(qv)
    qa, audio_rope = mrs.record("u", chunks=chunks)
    mrs.stop(qa)
    return video_rope, audio_rope


def admit_mix(mrs, video_rope, audio_rope):
    admitted = []
    plan = [
        (video_rope, Media.VIDEO), (video_rope, Media.VIDEO),
        (audio_rope, Media.AUDIO), (audio_rope, Media.AUDIO),
        (audio_rope, Media.AUDIO), (audio_rope, Media.AUDIO),
    ]
    for rope_id, media in plan:
        try:
            admitted.append(mrs.play("u", rope_id, media=media))
        except AdmissionRejected:
            break
    return admitted, len(plan)


class TestGeneralAdmissionStack:
    def test_general_admits_more_of_the_mix(self, profile, rng):
        msm_u, mrs_u = build_servers(general=False)
        video_u, audio_u = record_catalogue(mrs_u, profile, rng)
        uniform_admitted, _ = admit_mix(mrs_u, video_u, audio_u)

        msm_g, mrs_g = build_servers(general=True)
        video_g, audio_g = record_catalogue(mrs_g, profile, rng)
        general_admitted, total = admit_mix(mrs_g, video_g, audio_g)

        assert len(general_admitted) > len(uniform_admitted)
        assert len(general_admitted) == total  # the whole mix fits

    def test_general_admitted_mix_plays_continuously(self, profile, rng):
        msm, mrs = build_servers(general=True)
        video_rope, audio_rope = record_catalogue(mrs, profile, rng)
        admitted, _ = admit_mix(mrs, video_rope, audio_rope)
        session = PlaybackSession(mrs)
        result = session.run(admitted)
        assert result.all_continuous

    def test_stop_releases_general_slots(self, profile, rng):
        msm, mrs = build_servers(general=True)
        video_rope, audio_rope = record_catalogue(mrs, profile, rng)
        admitted, _ = admit_mix(mrs, video_rope, audio_rope)
        active_before = msm.admission.active_count
        mrs.stop(admitted[0])
        assert msm.admission.active_count == active_before - 1

    def test_record_goes_through_general_controller(self, profile, rng):
        msm, mrs = build_servers(general=True)
        frames = frames_for_duration(profile.video, 3.0, source="r")
        request_id, _ = mrs.record("u", frames=frames)
        assert msm.admission.active_count == 1
        mrs.stop(request_id)
        assert msm.admission.active_count == 0
