"""Integration: sustained editing churn keeps every invariant intact."""

import random

import pytest

from repro.media.frames import frames_for_duration
from repro.rope import EditingSession, Media
from repro.service import PlaybackSession
from repro.workload import random_edit_script


class TestEditChurn:
    @pytest.fixture
    def session(self, mrs, profile):
        session = EditingSession(mrs, user="editor")
        for name, seconds in (("target", 30.0), ("donor", 10.0)):
            frames = frames_for_duration(
                profile.video, seconds, source=name
            )
            request_id, rope_id = mrs.record("editor", frames=frames)
            mrs.stop(request_id)
            session.open(name, rope_id)
        return session

    def test_scripted_churn_preserves_invariants(self, session, mrs, msm):
        """Run 20 scripted edits; duration bookkeeping, interests, and
        playability must survive the whole sequence."""
        rng = random.Random(77)
        script = random_edit_script(30.0, 10.0, 20, rng)
        expected = 30.0
        for operation, args in script.steps:
            if operation == "insert":
                position, start, length = args
                session.insert("target", position, "donor", start, length)
                expected += length
            else:
                start, length = args
                session.delete("target", start, length)
                expected -= length
            rope = session.rope("target")
            # Durations track to within a frame per interval boundary.
            assert rope.duration == pytest.approx(
                expected, abs=(rope.interval_count() + 2) / 30.0
            )
            expected = rope.duration  # re-anchor to the quantized value
            # Interests exactly mirror the references.
            for strand_id in rope.referenced_strands():
                assert msm.interests.is_referenced(strand_id)
        # After all churn, the rope still plays continuously and in order.
        rope = session.rope("target")
        play_id = mrs.play("editor", rope.rope_id, media=Media.VIDEO)
        plan = mrs.playback_plan(play_id)
        assert plan.video_duration == pytest.approx(
            rope.duration, abs=rope.interval_count() / 30.0 + 0.2
        )
        result = PlaybackSession(mrs).run([play_id], k=4)
        assert result.metrics[play_id].continuous

    def test_churn_then_undo_all(self, session):
        """Undo unwinds the whole scripted history exactly."""
        rng = random.Random(78)
        original = session.rope("target").segments
        script = random_edit_script(30.0, 10.0, 10, rng)
        for operation, args in script.steps:
            if operation == "insert":
                position, start, length = args
                session.insert("target", position, "donor", start, length)
            else:
                start, length = args
                session.delete("target", start, length)
        while session.undo() is not None:
            pass
        assert session.rope("target").segments == original

    def test_churn_garbage_collection(self, session, mrs, msm):
        """Deleting everything after churn reclaims the whole disk."""
        rng = random.Random(79)
        script = random_edit_script(30.0, 10.0, 8, rng)
        for operation, args in script.steps:
            if operation == "insert":
                position, start, length = args
                session.insert("target", position, "donor", start, length)
            else:
                start, length = args
                session.delete("target", start, length)
        mrs.delete_rope("editor", session.rope("target").rope_id)
        mrs.delete_rope("editor", session.rope("donor").rope_id)
        assert msm.strand_ids() == []
        assert msm.occupancy == 0.0
