"""Integration: client mixes driving staggered admissions end to end."""

import pytest

from repro.errors import AdmissionRejected
from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession
from repro.workload import staggered_mix, uniform_mix


@pytest.fixture
def catalogue(mrs, profile):
    frames = frames_for_duration(profile.video, 8.0, source="mix")
    request_id, rope_id = mrs.record("studio", frames=frames)
    mrs.stop(request_id)
    return rope_id


class TestUniformMixPlayback:
    def test_uniform_mix_within_capacity_is_continuous(
        self, mrs, catalogue
    ):
        mix = uniform_mix(2, duration=8.0)
        request_ids = [
            mrs.play("studio", catalogue, media=Media.VIDEO)
            for _client in mix.initial()
        ]
        result = PlaybackSession(mrs).run(request_ids)
        assert result.all_continuous

    def test_oversized_uniform_mix_partially_admitted(
        self, mrs, catalogue
    ):
        mix = uniform_mix(12, duration=8.0)
        admitted = []
        rejected = 0
        for _client in mix.initial():
            try:
                admitted.append(
                    mrs.play("studio", catalogue, media=Media.VIDEO)
                )
            except AdmissionRejected:
                rejected += 1
        assert admitted and rejected
        assert PlaybackSession(mrs).run(admitted).all_continuous


class TestStaggeredMixPlayback:
    def test_staggered_arrivals_via_admissions(self, mrs, catalogue):
        mix = staggered_mix(3, duration=8.0, rounds_between=4)
        initial = [
            mrs.play("studio", catalogue, media=Media.VIDEO)
            for _client in mix.initial()
        ]
        later = []
        for client in mix.later():
            try:
                later.append(
                    (
                        client.arrival_round,
                        mrs.play("studio", catalogue, media=Media.VIDEO),
                    )
                )
            except AdmissionRejected:
                break
        session = PlaybackSession(mrs)
        result = session.run(initial, admissions=later)
        assert result.all_continuous
        # Later arrivals start later.
        if later:
            first_metrics = result.metrics[initial[0]]
            late_metrics = result.metrics[later[-1][1]]
            assert late_metrics.startup_latency > (
                first_metrics.startup_latency
            )
