"""Scale tests: long recordings exercising multi-block indices for real."""

import pytest

from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession


class TestLongRecording:
    @pytest.fixture(scope="class")
    def long_setup(self):
        """A ~9.5-minute recording: 4300 blocks spill the primary index."""
        from repro.config import TESTBED_1991
        from repro.disk import build_drive
        from repro.fs import MultimediaStorageManager
        from repro.rope import MultimediaRopeServer

        profile = TESTBED_1991
        msm = MultimediaStorageManager(
            build_drive(), profile.video, profile.audio,
            profile.video_device, profile.audio_device,
        )
        mrs = MultimediaRopeServer(msm)
        seconds = 4300 * 4 / 30.0  # 4300 blocks at 4 frames/block
        frames = frames_for_duration(profile.video, seconds, source="long")
        request_id, rope_id = mrs.record("u", frames=frames)
        mrs.stop(request_id)
        return msm, mrs, rope_id, frames

    def test_index_spills_to_multiple_primaries(self, long_setup):
        msm, mrs, rope_id, frames = long_setup
        strand_id = next(iter(mrs.get_rope(rope_id).referenced_strands()))
        strand = msm.get_strand(strand_id)
        assert strand.block_count == 4300
        assert len(strand.index.primaries) == 2  # fanout 4096
        assert len(strand.index.secondaries) == 1
        strand.verify_against_index()

    def test_random_access_via_index(self, long_setup):
        msm, mrs, rope_id, frames = long_setup
        strand_id = next(iter(mrs.get_rope(rope_id).referenced_strands()))
        strand = msm.get_strand(strand_id)
        for block_number in (0, 4095, 4096, 4299):
            entry = strand.index.lookup(block_number)
            assert entry.sector == (
                strand.slot_of(block_number) * strand.sectors_per_block
            )

    def test_placement_still_bounded_at_scale(self, long_setup):
        msm, mrs, rope_id, frames = long_setup
        strand_id = next(iter(mrs.get_rope(rope_id).referenced_strands()))
        strand = msm.get_strand(strand_id)
        slots = strand.slots()
        policy = msm.policies.video
        for a, b in zip(slots, slots[1:]):
            gap = msm.drive.access_gap(a, b)
            assert gap <= policy.scattering_upper + 1e-12

    def test_partial_interval_playback(self, long_setup):
        """Seek deep into the recording: random access works end to end."""
        msm, mrs, rope_id, frames = long_setup
        start = 540.0
        play_id = mrs.play(
            "u", rope_id, start=start, length=4.0, media=Media.VIDEO
        )
        plan = mrs.playback_plan(play_id)
        tokens = plan.tokens()
        first_frame = int(start * 30)
        assert tokens == [
            f.token for f in frames[first_frame:first_frame + 120]
        ]
        result = PlaybackSession(mrs).run([play_id], k=4)
        assert result.metrics[play_id].continuous
