"""Unit tests for the three §3 allocation disciplines."""

import random

import pytest

from repro.disk import (
    ConstrainedScatterAllocator,
    ContiguousAllocator,
    FreeMap,
    RandomAllocator,
    ScatterBounds,
    build_drive,
)
from repro.errors import (
    AllocationError,
    DiskFullError,
    ParameterError,
    ScatteringError,
)


@pytest.fixture
def drive():
    return build_drive()


@pytest.fixture
def freemap(drive):
    return FreeMap(drive.slots)


@pytest.fixture
def bounds(drive):
    rotation = drive.rotation.average_latency
    return ScatterBounds(lower=0.0, upper=rotation + 0.010)


class TestScatterBounds:
    def test_admits(self):
        bounds = ScatterBounds(lower=0.005, upper=0.020)
        assert bounds.admits(0.005)
        assert bounds.admits(0.020)
        assert not bounds.admits(0.004)
        assert not bounds.admits(0.021)

    def test_rejects_inverted(self):
        with pytest.raises(ParameterError):
            ScatterBounds(lower=0.02, upper=0.01)

    def test_rejects_negative_lower(self):
        with pytest.raises(ParameterError):
            ScatterBounds(lower=-0.01, upper=0.01)


class TestConstrainedScatter:
    def test_gaps_respect_bounds(self, drive, freemap, bounds):
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        slots = allocator.allocate_strand(100)
        assert len(slots) == 100
        assert len(set(slots)) == 100
        for a, b in zip(slots, slots[1:]):
            assert bounds.admits(drive.access_gap(a, b))

    def test_lower_bound_enforced(self, drive, freemap):
        rotation = drive.rotation.average_latency
        # Require a real seek between consecutive blocks.
        bounds = ScatterBounds(
            lower=rotation + 0.005, upper=rotation + 0.015
        )
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        slots = allocator.allocate_strand(50)
        for a, b in zip(slots, slots[1:]):
            gap = drive.access_gap(a, b)
            assert gap >= bounds.lower - 1e-12

    def test_upper_below_rotation_rejected(self, drive, freemap):
        rotation = drive.rotation.average_latency
        with pytest.raises(ScatteringError):
            ConstrainedScatterAllocator(
                drive, freemap, ScatterBounds(0.0, rotation * 0.5)
            )

    def test_respects_hint(self, drive, freemap, bounds):
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        slot = allocator.allocate_first(hint=500)
        assert slot == 500

    def test_hint_wraps_when_tail_full(self, drive, freemap, bounds):
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        for s in range(500, drive.slots):
            freemap.allocate(s)
        slot = allocator.allocate_first(hint=500)
        assert slot == 0

    def test_crowded_window_raises(self, drive, freemap, bounds):
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        first = allocator.allocate_first()
        # Fill every slot the distance window could reach.
        window = allocator.distance_window
        max_cyl = drive.cylinder_of(first) + window.stop + 2
        for slot in range(drive.slots):
            if freemap.is_free(slot) and drive.cylinder_of(slot) <= max_cyl:
                freemap.allocate(slot)
        with pytest.raises(ScatteringError):
            allocator.allocate_after(first)

    def test_failed_strand_releases_slots(self, drive, freemap, bounds):
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        # Leave only 3 usable slots near the start; a 10-block strand must
        # fail and roll back.
        for slot in range(3, drive.slots):
            freemap.allocate(slot)
        before = freemap.free_count
        with pytest.raises((ScatteringError, DiskFullError)):
            allocator.allocate_strand(10)
        assert freemap.free_count == before

    def test_full_disk_raises_disk_full(self, drive, freemap, bounds):
        for slot in range(drive.slots):
            freemap.allocate(slot)
        allocator = ConstrainedScatterAllocator(drive, freemap, bounds)
        with pytest.raises(DiskFullError):
            allocator.allocate_first()


class TestRandomAllocator:
    def test_allocates_unique_free_slots(self, drive, freemap):
        allocator = RandomAllocator(drive, freemap, random.Random(3))
        slots = allocator.allocate_strand(200)
        assert len(set(slots)) == 200

    def test_deterministic_given_seed(self, drive):
        def run():
            freemap = FreeMap(drive.slots)
            allocator = RandomAllocator(drive, freemap, random.Random(9))
            return allocator.allocate_strand(50)
        assert run() == run()

    def test_requires_rng(self, drive, freemap):
        with pytest.raises(ParameterError):
            RandomAllocator(drive, freemap, None)


class TestContiguousAllocator:
    def test_run_is_consecutive(self, drive, freemap):
        allocator = ContiguousAllocator(drive, freemap)
        slots = allocator.allocate_strand(40)
        assert slots == list(range(slots[0], slots[0] + 40))

    def test_fragmentation_failure(self, drive, freemap):
        allocator = ContiguousAllocator(drive, freemap)
        # Fragment the disk: allocate every other slot.
        for slot in range(0, drive.slots, 2):
            freemap.allocate(slot)
        with pytest.raises(AllocationError) as excinfo:
            allocator.allocate_strand(2)
        assert "fragment" in str(excinfo.value)

    def test_disk_full_distinguished_from_fragmentation(
        self, drive, freemap
    ):
        allocator = ContiguousAllocator(drive, freemap)
        for slot in range(drive.slots - 1):
            freemap.allocate(slot)
        with pytest.raises(DiskFullError):
            allocator.allocate_strand(5)

    def test_allocate_after_requires_adjacency(self, drive, freemap):
        allocator = ContiguousAllocator(drive, freemap)
        first = allocator.allocate_first()
        freemap.allocate(first + 1)
        with pytest.raises(AllocationError):
            allocator.allocate_after(first)


class TestAllocatorValidation:
    def test_mismatched_freemap_rejected(self, drive):
        small = FreeMap(10)
        with pytest.raises(ParameterError):
            ContiguousAllocator(drive, small)

    def test_zero_count_rejected(self, drive, freemap):
        allocator = ContiguousAllocator(drive, freemap)
        with pytest.raises(ParameterError):
            allocator.allocate_strand(0)
