"""Unit tests for disk geometry and address arithmetic."""

import pytest

from repro.disk.geometry import CHS, DiskGeometry
from repro.errors import AddressError, ParameterError


@pytest.fixture
def geometry():
    return DiskGeometry(
        cylinders=10, tracks_per_cylinder=4, sectors_per_track=16,
        sector_bits=4096.0,
    )


class TestCapacity:
    def test_sector_counts(self, geometry):
        assert geometry.sectors_per_cylinder == 64
        assert geometry.total_sectors == 640
        assert geometry.capacity_bits == 640 * 4096.0

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ParameterError):
            DiskGeometry(0, 4, 16, 4096.0)
        with pytest.raises(ParameterError):
            DiskGeometry(10, 4, 16, 0.0)


class TestAddressing:
    def test_lba_chs_roundtrip(self, geometry):
        for lba in (0, 1, 63, 64, 639):
            chs = geometry.to_chs(lba)
            assert geometry.to_lba(chs) == lba

    def test_chs_components(self, geometry):
        chs = geometry.to_chs(64 + 16 + 3)  # cyl 1, head 1, sector 3
        assert chs == CHS(cylinder=1, head=1, sector=3)

    def test_cylinder_of_lba(self, geometry):
        assert geometry.cylinder_of_lba(0) == 0
        assert geometry.cylinder_of_lba(63) == 0
        assert geometry.cylinder_of_lba(64) == 1
        assert geometry.cylinder_of_lba(639) == 9

    def test_out_of_range_lba(self, geometry):
        with pytest.raises(AddressError):
            geometry.to_chs(640)
        with pytest.raises(AddressError):
            geometry.validate_lba(-1)

    def test_out_of_range_chs(self, geometry):
        with pytest.raises(AddressError):
            geometry.to_lba(CHS(cylinder=10, head=0, sector=0))
        with pytest.raises(AddressError):
            geometry.to_lba(CHS(cylinder=0, head=4, sector=0))
        with pytest.raises(AddressError):
            geometry.to_lba(CHS(cylinder=0, head=0, sector=16))


class TestSlots:
    def test_slot_count(self, geometry):
        assert geometry.slots(sectors_per_block=8) == 80
        assert geometry.slots(sectors_per_block=7) == 91  # floor division

    def test_slot_to_lba(self, geometry):
        assert geometry.slot_to_lba(0, 8) == 0
        assert geometry.slot_to_lba(9, 8) == 72

    def test_slot_out_of_range(self, geometry):
        with pytest.raises(AddressError):
            geometry.slot_to_lba(80, 8)

    def test_cylinder_of_slot(self, geometry):
        # 8 slots per cylinder at 8 sectors/block.
        assert geometry.cylinder_of_slot(7, 8) == 0
        assert geometry.cylinder_of_slot(8, 8) == 1

    def test_slots_per_cylinder(self, geometry):
        assert geometry.slots_per_cylinder(8) == pytest.approx(8.0)

    def test_rejects_bad_block_size(self, geometry):
        with pytest.raises(ParameterError):
            geometry.slots(0)
