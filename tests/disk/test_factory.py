"""Unit tests for drive factory specs."""

import pytest

from repro.disk import (
    FAST_DRIVE,
    TESTBED_DRIVE,
    build_array,
    build_drive,
    drive_with_freemap,
)
from repro.errors import ParameterError


class TestSpecs:
    def test_testbed_geometry(self):
        geometry = TESTBED_DRIVE.geometry()
        assert geometry.cylinders == 1024
        # ~229 MBytes total.
        assert geometry.capacity_bits == pytest.approx(
            1024 * 8 * 56 * 512 * 8
        )

    def test_fast_drive_is_faster(self):
        assert FAST_DRIVE.transfer_rate > TESTBED_DRIVE.transfer_rate
        fast = build_drive(FAST_DRIVE)
        slow = build_drive(TESTBED_DRIVE)
        assert fast.parameters().seek_max < slow.parameters().seek_max


class TestBuilders:
    def test_default_block_holds_four_frames(self):
        drive = build_drive()
        # 32 KBytes = four 8-KByte compressed NTSC frames.
        assert drive.block_bits == 4 * 8 * 1024 * 8

    def test_custom_block_size(self):
        drive = build_drive(sectors_per_block=8)
        assert drive.block_bits == 8 * 512 * 8

    def test_drive_with_freemap_sizes_match(self):
        drive, freemap = drive_with_freemap()
        assert freemap.slots == drive.slots

    def test_build_array_members_independent(self):
        array = build_array(3)
        array.member(0).read_slot(array.member(0).slots - 1)
        assert array.member(0).head_cylinder > 0
        assert array.member(1).head_cylinder == 0

    def test_build_array_rejects_zero(self):
        with pytest.raises(ParameterError):
            build_array(0)
