"""Unit tests for seek-time and rotation models."""

import random

import pytest

from repro.disk.seek import LinearSeek, Rotation, SqrtAffineSeek, TableSeek
from repro.errors import ParameterError


class TestLinearSeek:
    def test_zero_distance_is_free(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        assert model.seek_time(0) == 0.0

    def test_affine_form(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        assert model.seek_time(100) == pytest.approx(0.003 + 0.01)

    def test_monotone(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        times = [model.seek_time(d) for d in range(0, 500, 37)]
        assert times == sorted(times)

    def test_inverse_consistency(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        for budget in (0.004, 0.01, 0.05):
            d = model.max_distance_within(budget, cylinders=1000)
            assert model.seek_time(d) <= budget
            if d < 999:
                assert model.seek_time(d + 1) > budget

    def test_negative_budget(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        assert model.max_distance_within(-0.01, 1000) == -1

    def test_budget_below_settle_gives_zero(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        assert model.max_distance_within(0.002, 1000) == 0

    def test_rejects_negative_distance(self):
        model = LinearSeek(settle_time=0.003, slope=0.0001)
        with pytest.raises(ParameterError):
            model.seek_time(-1)


class TestSqrtAffineSeek:
    def test_sqrt_form(self):
        model = SqrtAffineSeek(settle_time=0.002, coefficient=0.001)
        assert model.seek_time(100) == pytest.approx(0.002 + 0.01)

    def test_short_seeks_relatively_expensive(self):
        model = SqrtAffineSeek(settle_time=0.0, coefficient=0.001)
        # Doubling distance less than doubles time.
        assert model.seek_time(200) < 2 * model.seek_time(100)

    def test_inverse_consistency(self):
        model = SqrtAffineSeek(settle_time=0.002, coefficient=0.001)
        for budget in (0.005, 0.02):
            d = model.max_distance_within(budget, cylinders=2000)
            assert model.seek_time(d) <= budget + 1e-12
            if d < 1999:
                assert model.seek_time(d + 1) > budget


class TestTableSeek:
    def test_interpolation(self):
        model = TableSeek([(10, 0.010), (100, 0.019)])
        assert model.seek_time(55) == pytest.approx(0.0145)

    def test_below_first_point_anchors_to_zero(self):
        model = TableSeek([(10, 0.010)])
        assert model.seek_time(5) == pytest.approx(0.005)
        assert model.seek_time(0) == 0.0

    def test_extrapolation_beyond_last(self):
        model = TableSeek([(10, 0.010), (100, 0.019)])
        assert model.seek_time(190) == pytest.approx(0.028)

    def test_generic_inverse_via_binary_search(self):
        model = TableSeek([(10, 0.010), (100, 0.019), (1000, 0.030)])
        d = model.max_distance_within(0.019, cylinders=1000)
        assert model.seek_time(d) <= 0.019
        assert d >= 100

    def test_rejects_unsorted(self):
        with pytest.raises(ParameterError):
            TableSeek([(100, 0.02), (10, 0.01)])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ParameterError):
            TableSeek([(10, 0.02), (100, 0.01)])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            TableSeek([])


class TestRotation:
    def test_latency_values(self):
        rotation = Rotation(rpm=3600.0)
        assert rotation.revolution_time == pytest.approx(1 / 60)
        assert rotation.average_latency == pytest.approx(1 / 120)
        assert rotation.max_latency == pytest.approx(1 / 60)

    def test_deterministic_latency(self):
        rotation = Rotation(rpm=3600.0, randomized=False)
        assert rotation.latency() == rotation.average_latency

    def test_randomized_needs_rng(self):
        rotation = Rotation(rpm=3600.0, randomized=True)
        with pytest.raises(ParameterError):
            rotation.latency()

    def test_randomized_within_revolution(self):
        rotation = Rotation(rpm=3600.0, randomized=True)
        rng = random.Random(1)
        for _ in range(100):
            latency = rotation.latency(rng)
            assert 0 <= latency < rotation.revolution_time

    def test_rejects_zero_rpm(self):
        with pytest.raises(ParameterError):
            Rotation(rpm=0.0)
