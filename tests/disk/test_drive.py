"""Unit tests for the simulated drive."""

import pytest

from repro.disk import TESTBED_DRIVE, build_drive
from repro.disk.drive import SimulatedDrive
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import LinearSeek, Rotation
from repro.errors import ParameterError


@pytest.fixture
def drive():
    return build_drive()


class TestDerivedSizes:
    def test_block_bits(self, drive):
        assert drive.block_bits == 64 * 512 * 8

    def test_slots_match_geometry(self, drive):
        assert drive.slots == drive.geometry.slots(64)


class TestTiming:
    def test_transfer_time(self, drive):
        assert drive.transfer_time(drive.transfer_rate) == pytest.approx(1.0)

    def test_positioning_time_includes_rotation(self, drive):
        same_cylinder = drive.positioning_time(5, 5)
        assert same_cylinder == pytest.approx(
            drive.rotation.average_latency
        )

    def test_positioning_grows_with_distance(self, drive):
        near = drive.positioning_time(0, 10)
        far = drive.positioning_time(0, 1000)
        assert far > near

    def test_access_gap_symmetric(self, drive):
        assert drive.access_gap(10, 500) == pytest.approx(
            drive.access_gap(500, 10)
        )


class TestStatefulAccess:
    def test_read_moves_head(self, drive):
        target = drive.slots - 1
        drive.read_slot(target)
        assert drive.head_cylinder == drive.cylinder_of(target)

    def test_read_duration_decomposes(self, drive):
        drive.park(0)
        slot = drive.slots // 2
        distance = drive.cylinder_of(slot)
        expected = (
            drive.seek_model.seek_time(distance)
            + drive.rotation.average_latency
            + drive.transfer_time(drive.block_bits)
        )
        assert drive.read_slot(slot) == pytest.approx(expected)

    def test_partial_payload_cheaper(self, drive):
        drive.park(0)
        full = drive.read_slot(0)
        drive.park(0)
        partial = drive.read_slot(0, bits=drive.block_bits / 4)
        assert partial < full

    def test_write_timing_equals_read(self, drive):
        drive.park(0)
        read = drive.read_slot(100)
        drive.park(0)
        write = drive.write_slot(100)
        assert write == pytest.approx(read)

    def test_stats_accumulate(self, drive):
        drive.stats.reset()
        drive.read_slot(0)
        drive.write_slot(drive.slots - 1)
        assert drive.stats.reads == 1
        assert drive.stats.writes == 1
        assert drive.stats.operations == 2
        assert drive.stats.busy_time > 0
        assert drive.stats.seek_distance > 0

    def test_slot_out_of_range(self, drive):
        with pytest.raises(ParameterError):
            drive.read_slot(drive.slots)

    def test_park_out_of_range(self, drive):
        with pytest.raises(ParameterError):
            drive.park(drive.geometry.cylinders)


class TestParameterDerivation:
    def test_parameters_ordering(self, drive):
        params = drive.parameters()
        assert params.seek_track <= params.seek_avg <= params.seek_max
        assert params.transfer_rate == drive.transfer_rate
        assert params.cylinders == drive.geometry.cylinders

    def test_seek_max_covers_every_observed_gap(self, drive):
        params = drive.parameters()
        worst = drive.positioning_time(0, drive.geometry.cylinders - 1)
        assert worst <= params.seek_max + 1e-12

    def test_randomized_rotation_requires_rng(self):
        geometry = TESTBED_DRIVE.geometry()
        with pytest.raises(ParameterError):
            SimulatedDrive(
                geometry=geometry,
                seek_model=TESTBED_DRIVE.seek_model(),
                rotation=Rotation(rpm=3600, randomized=True),
                transfer_rate=1e7,
                sectors_per_block=64,
            )

    def test_rejects_bad_transfer_rate(self):
        with pytest.raises(ParameterError):
            SimulatedDrive(
                geometry=TESTBED_DRIVE.geometry(),
                seek_model=TESTBED_DRIVE.seek_model(),
                rotation=Rotation(rpm=3600),
                transfer_rate=0,
                sectors_per_block=64,
            )
