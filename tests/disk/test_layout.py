"""Unit tests for strand placement, gap filling, and slot search."""

import pytest

from repro.disk import (
    ConstrainedScatterAllocator,
    FreeMap,
    GapFiller,
    Placement,
    ScatterBounds,
    StrandPlacer,
    build_drive,
)
from repro.disk.layout import find_free_slot_near
from repro.errors import DiskFullError, ParameterError


@pytest.fixture
def drive():
    return build_drive()


@pytest.fixture
def freemap(drive):
    return FreeMap(drive.slots)


@pytest.fixture
def placer(drive, freemap):
    bounds = ScatterBounds(0.0, drive.rotation.average_latency + 0.008)
    return StrandPlacer(
        drive, ConstrainedScatterAllocator(drive, freemap, bounds)
    )


class TestPlacement:
    def test_measured_gaps_match_drive(self, drive, placer):
        placement = placer.place(30)
        assert placement.block_count == 30
        for (a, b), gap in zip(
            zip(placement.slots, placement.slots[1:]), placement.gaps
        ):
            assert gap == pytest.approx(drive.access_gap(a, b))

    def test_gap_statistics(self, placer):
        placement = placer.place(30)
        assert placement.min_gap <= placement.mean_gap <= placement.max_gap
        assert placement.within(placement.min_gap, placement.max_gap)

    def test_single_block_placement(self, placer):
        placement = placer.place(1)
        assert placement.max_gap == 0.0
        assert placement.mean_gap == 0.0

    def test_remove_releases_slots(self, placer, freemap):
        before = freemap.free_count
        placement = placer.place(20)
        assert freemap.free_count == before - 20
        placer.remove(placement)
        assert freemap.free_count == before

    def test_placement_validation(self):
        with pytest.raises(ParameterError):
            Placement(slots=(), gaps=())
        with pytest.raises(ParameterError):
            Placement(slots=(1, 2), gaps=())


class TestGapFiller:
    def test_takes_lowest_free_slots(self, freemap):
        freemap.allocate(0)
        filler = GapFiller(freemap)
        slots = filler.place(3)
        assert slots == [1, 2, 3]

    def test_remove(self, freemap):
        filler = GapFiller(freemap)
        slots = filler.place(5)
        filler.remove(slots)
        assert freemap.free_count == freemap.slots

    def test_insufficient_space(self, freemap):
        filler = GapFiller(freemap)
        with pytest.raises(DiskFullError):
            filler.place(freemap.slots + 1)

    def test_media_gaps_usable_for_text(self, drive, freemap):
        """The paper's unified-server point: text fits between media blocks."""
        rotation = drive.rotation.average_latency
        # A lower bound forcing real seeks leaves slot gaps between blocks.
        bounds = ScatterBounds(rotation + 0.004, rotation + 0.008)
        placer = StrandPlacer(
            drive, ConstrainedScatterAllocator(drive, freemap, bounds)
        )
        placement = placer.place(50)
        filler = GapFiller(freemap)
        text_slots = filler.place(30)
        media = set(placement.slots)
        assert not media.intersection(text_slots)
        # Some text landed strictly inside the media extent (in the gaps).
        low, high = min(media), max(media)
        assert any(low < slot < high for slot in text_slots)


class TestFindFreeSlotNear:
    def test_exact_cylinder_when_free(self, drive, freemap):
        cylinder = 100
        slot = find_free_slot_near(freemap, drive, cylinder)
        assert abs(drive.cylinder_of(slot) - cylinder) <= 1

    def test_widens_when_neighbourhood_full(self, drive, freemap):
        target = 100
        for slot in range(drive.slots):
            if abs(drive.cylinder_of(slot) - target) <= 10:
                freemap.allocate(slot)
        slot = find_free_slot_near(freemap, drive, target)
        assert abs(drive.cylinder_of(slot) - target) > 10

    def test_clamps_cylinder(self, drive, freemap):
        slot = find_free_slot_near(freemap, drive, 10 ** 9)
        assert 0 <= slot < drive.slots

    def test_raises_within_widen_limit(self, drive, freemap):
        for slot in range(drive.slots):
            freemap.allocate(slot)
        with pytest.raises(DiskFullError):
            find_free_slot_near(freemap, drive, 0, max_widen=5)
