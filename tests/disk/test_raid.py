"""Unit tests for the multi-head drive array."""

import pytest

from repro.disk import DriveArray, StripedSlot, build_array, build_drive
from repro.errors import ParameterError


@pytest.fixture
def array():
    return build_array(heads=4)


class TestStriping:
    def test_round_robin(self, array):
        for i in range(12):
            assert array.stripe(i, slot=0).drive_index == i % 4

    def test_negative_index_rejected(self, array):
        with pytest.raises(ParameterError):
            array.stripe(-1, slot=0)

    def test_heads(self, array):
        assert array.heads == 4

    def test_uniform_block_size_required(self):
        a = build_drive(sectors_per_block=64)
        b = build_drive(sectors_per_block=32)
        with pytest.raises(ParameterError):
            DriveArray([a, b])

    def test_empty_array_rejected(self):
        with pytest.raises(ParameterError):
            DriveArray([])


class TestBatchReads:
    def test_batch_duration_is_slowest_member(self, array):
        for member in array.drives:
            member.park(0)
        near = StripedSlot(drive_index=0, slot=0)
        far = StripedSlot(drive_index=1, slot=array.member(1).slots - 1)
        single_far = build_drive()
        single_far.park(0)
        expected = single_far.read_slot(single_far.slots - 1)
        assert array.read_batch([near, far]) == pytest.approx(expected)

    def test_duplicate_member_rejected(self, array):
        with pytest.raises(ParameterError):
            array.read_batch(
                [
                    StripedSlot(drive_index=0, slot=0),
                    StripedSlot(drive_index=0, slot=5),
                ]
            )

    def test_empty_batch_is_free(self, array):
        assert array.read_batch([]) == 0.0

    def test_member_out_of_range(self, array):
        with pytest.raises(ParameterError):
            array.member(4)


class TestStripedRun:
    def test_batches_counted(self, array):
        slots = [0, 0, 0, 0, 1, 1]
        total, batches = array.read_striped_run(slots)
        assert batches == 2
        assert total > 0

    def test_parallel_run_faster_than_serial(self):
        array = build_array(heads=4)
        serial = build_drive()
        slots = list(range(0, 64, 4))
        serial_time = sum(serial.read_slot(s) for s in slots)
        parallel_time, _ = array.read_striped_run(slots)
        assert parallel_time < serial_time

    def test_parameters_report_heads(self, array):
        params = array.parameters()
        assert params.heads == 4
        base = array.member(0).parameters()
        assert params.transfer_rate == base.transfer_rate
