"""Unit tests for the free-space map."""

import random

import pytest

from repro.disk.freemap import FreeMap
from repro.errors import AllocationError, DiskFullError, ParameterError


class TestBasics:
    def test_new_map_all_free(self):
        fm = FreeMap(100)
        assert fm.free_count == 100
        assert fm.used_count == 0
        assert fm.occupancy == 0.0
        assert all(fm.is_free(s) for s in range(100))

    def test_allocate_release_cycle(self):
        fm = FreeMap(10)
        fm.allocate(3)
        assert not fm.is_free(3)
        assert fm.free_count == 9
        assert fm.occupancy == pytest.approx(0.1)
        fm.release(3)
        assert fm.is_free(3)
        assert fm.free_count == 10

    def test_double_allocate_rejected(self):
        fm = FreeMap(10)
        fm.allocate(3)
        with pytest.raises(AllocationError):
            fm.allocate(3)

    def test_double_release_rejected(self):
        fm = FreeMap(10)
        with pytest.raises(AllocationError):
            fm.release(3)

    def test_out_of_range_rejected(self):
        fm = FreeMap(10)
        with pytest.raises(ParameterError):
            fm.allocate(10)
        with pytest.raises(ParameterError):
            fm.is_free(-1)

    def test_rejects_empty_map(self):
        with pytest.raises(ParameterError):
            FreeMap(0)


class TestWindows:
    def test_first_free_in_window(self):
        fm = FreeMap(10)
        for s in (0, 1, 2):
            fm.allocate(s)
        assert fm.first_free_in_window(0, 10) == 3
        assert fm.first_free_in_window(0, 3) is None

    def test_last_free_in_window(self):
        fm = FreeMap(10)
        fm.allocate(9)
        assert fm.last_free_in_window(0, 10) == 8

    def test_window_clamped(self):
        fm = FreeMap(10)
        assert fm.first_free_in_window(-5, 100) == 0

    def test_inverted_window_empty(self):
        fm = FreeMap(10)
        assert fm.first_free_in_window(8, 3) is None

    def test_free_in_window_ascending(self):
        fm = FreeMap(10)
        fm.allocate(4)
        slots = list(fm.free_in_window(2, 8))
        assert slots == [2, 3, 5, 6, 7]


class TestRuns:
    def test_find_run(self):
        fm = FreeMap(10)
        fm.allocate(2)
        assert fm.find_run(2) == 0
        assert fm.find_run(3) == 3
        assert fm.find_run(7) == 3
        assert fm.find_run(8) is None

    def test_find_run_with_start(self):
        fm = FreeMap(10)
        assert fm.find_run(3, start=5) == 5

    def test_find_run_rejects_zero(self):
        fm = FreeMap(10)
        with pytest.raises(ParameterError):
            fm.find_run(0)


class TestRandomFree:
    def test_returns_free_slot(self):
        fm = FreeMap(50)
        rng = random.Random(7)
        for s in range(0, 50, 2):
            fm.allocate(s)
        for _ in range(20):
            slot = fm.random_free(rng)
            assert fm.is_free(slot)

    def test_nearly_full_map_falls_back_to_scan(self):
        fm = FreeMap(100)
        for s in range(99):
            fm.allocate(s)
        rng = random.Random(7)
        assert fm.random_free(rng) == 99

    def test_full_map_raises(self):
        fm = FreeMap(3)
        for s in range(3):
            fm.allocate(s)
        with pytest.raises(DiskFullError):
            fm.random_free(random.Random(1))


class TestListings:
    def test_free_and_used_slots(self):
        fm = FreeMap(6)
        for s in (1, 4):
            fm.allocate(s)
        assert fm.used_slots() == [1, 4]
        assert fm.free_slots() == [0, 2, 3, 5]
