"""Per-node observability federation tests.

The federation's acceptance bar is *equivalence*: handing each node a
:class:`~repro.obs.ScopedObservability` view instead of the flat shared
handle must change nothing observable at the cluster level — the parent
snapshot is byte-identical, and :func:`~repro.obs.merge_snapshots` over
every scoped view (nodes plus the router's ``"cluster"`` scope)
reproduces the flat run's shared counters exactly.  Histogram bucket
counts merge exactly too; only the float ``sum`` fields are compared
with a tolerance, because per-node partial sums re-add in a different
association order than flat interleaved accumulation.

On top of equivalence, the federation must *add* information: per-node
labeled ``cluster.*`` counters, per-node metric breakdowns, node-level
profiler attribution, and causally connected cross-node handoff
traces.
"""

import json
import math

import pytest

from repro.cluster import (
    cluster_observability,
    run_cluster_smoke_scenario,
)

pytestmark = [pytest.mark.cluster, pytest.mark.profile]

SEED = 20260806


@pytest.fixture(scope="module")
def scoped_run():
    obs = cluster_observability(SEED, profile=True)
    return run_cluster_smoke_scenario(seed=SEED, obs=obs)


@pytest.fixture(scope="module")
def flat_run():
    obs = cluster_observability(SEED, profile=True)
    return run_cluster_smoke_scenario(
        seed=SEED, obs=obs, scope_nodes=False
    )


class TestFlatEquivalence:
    def test_parent_snapshots_are_byte_identical(
        self, scoped_run, flat_run
    ):
        # The profile section's per-node/per-drive maps are exactly the
        # information federation adds, so they differ by design; every
        # shared surface (metrics, timeline, audit, spans, SLOs) must
        # serialize byte-identically.
        scoped = scoped_run.obs.snapshot_dict()
        flat = flat_run.obs.snapshot_dict()
        scoped_profile = scoped.pop("profile")
        flat_profile = flat.pop("profile")
        assert json.dumps(scoped, sort_keys=True) == (
            json.dumps(flat, sort_keys=True)
        )
        # Cluster-wide phase totals still agree exactly.
        assert scoped_profile["phases"] == flat_profile["phases"]
        assert scoped_profile["top"] == flat_profile["top"]

    def test_serve_results_are_identical(self, scoped_run, flat_run):
        assert scoped_run.result == flat_run.result

    def test_merged_views_reproduce_flat_shared_counters(
        self, scoped_run, flat_run
    ):
        merged = scoped_run.obs.merged_node_snapshot_dict()
        flat = flat_run.obs.registry.snapshot_dict()
        assert merged["metrics"]["counters"] == flat["counters"]
        assert merged["metrics"]["timers"].keys() == (
            flat["timers"].keys()
        )
        for name, entry in merged["metrics"]["timers"].items():
            assert entry["calls"] == flat["timers"][name]["calls"]

    def test_merged_histograms_match_bucketwise(
        self, scoped_run, flat_run
    ):
        merged = scoped_run.obs.merged_node_snapshot_dict()
        flat = flat_run.obs.registry.snapshot_dict()
        histograms = merged["metrics"]["histograms"]
        assert histograms.keys() == flat["histograms"].keys()
        for name, data in histograms.items():
            expected = flat["histograms"][name]
            assert data["buckets"] == list(expected["buckets"]), name
            assert data["counts"] == list(expected["counts"]), name
            assert data["count"] == expected["count"], name
            assert data["overflow"] == expected["overflow"], name
            # Float sums re-associate across per-node partials; only
            # the last ulp may move (see merge_snapshots docs).
            assert math.isclose(
                data["sum"], expected["sum"], rel_tol=1e-9, abs_tol=1e-12
            ), name

    def test_merged_profile_matches_parent_phase_totals(
        self, scoped_run
    ):
        merged = scoped_run.obs.merged_node_snapshot_dict()
        parent = scoped_run.obs.profiler.summary_dict()["phases"]
        for phase, stat in merged["profile"].items():
            # Node-attributed work is a subset of the cluster total
            # (single-node phases like checkpointing carry no node id).
            assert stat["ops"] <= parent[phase]["ops"], phase
            assert stat["cost_s"] <= parent[phase]["cost_s"] + 1e-12


class TestFederatedBreakdowns:
    def test_every_node_and_the_router_scope_have_views(
        self, scoped_run
    ):
        assert scoped_run.obs.node_ids() == [
            "cluster", "node-00", "node-01", "node-02",
        ]

    def test_labeled_cluster_counters_name_nodes(self, scoped_run):
        counters = scoped_run.obs.registry.snapshot_dict()["counters"]
        result = scoped_run.result
        killed = "node-01"
        assert counters[f"cluster.node_deaths.{killed}"] == 1
        assert counters[f"cluster.handoffs_from.{killed}"] == (
            len(result.handoffs)
        )
        moved_to = {
            record.to_node for record in result.handoffs
            if record.to_node is not None
        }
        for node_id in moved_to:
            assert counters[f"cluster.handoffs_to.{node_id}"] >= 1
        clean_total = sum(
            counters.get(f"cluster.handoffs_clean.{node_id}", 0)
            for node_id in moved_to
        )
        assert clean_total == result.handoffs_clean

    def test_node_views_carry_disjoint_local_metrics(self, scoped_run):
        snaps = scoped_run.obs.node_snapshot_dicts()
        # The router's own counters live only in the "cluster" scope.
        cluster_counters = snaps["cluster"]["metrics"]["counters"]
        assert all(
            name.startswith("cluster.") or name.startswith("server.")
            for name in cluster_counters
        )
        # Per-node disk work stays attributed to that node's view.
        for node_id in ("node-00", "node-02"):
            local = snaps[node_id]["metrics"]["counters"]
            assert local["disk.accesses"] > 0
        # The dead node served chunk 0 before the kill, so it has
        # profile attribution too.
        assert snaps["node-01"]["profile"]

    def test_profiler_attributes_per_node_drives(self, scoped_run):
        summary = scoped_run.obs.profiler.summary_dict()
        assert {"node-00", "node-01", "node-02"} <= (
            summary["per_node"].keys()
        )
        assert any(
            label.endswith(".drive") for label in summary["per_drive"]
        )


class TestHandoffTraceConnectivity:
    def test_handoff_traces_stay_connected_across_nodes(
        self, scoped_run
    ):
        tracer = scoped_run.obs.tracer
        handoffs = [
            record for record in scoped_run.result.handoffs
            if record.to_node is not None
        ]
        assert handoffs, "smoke scenario must hand off sessions"
        for record in handoffs:
            roots = tracer.spans(
                name="cluster.request", session=record.session_id
            )
            assert len(roots) == 1, record.session_id
            trace_id = roots[0].trace_id
            assert tracer.trace_is_connected(trace_id), (
                f"handoff trace for {record.session_id} is not one tree"
            )
            handoff_spans = tracer.spans(
                name="cluster.handoff", trace_id=trace_id
            )
            assert len(handoff_spans) == 1
            attrs = handoff_spans[0].attrs
            assert attrs["from"] == record.from_node
            assert attrs["to"] == record.to_node
            serve_nodes = {
                span.attrs["node"]
                for span in tracer.spans(
                    name="cluster.serve", trace_id=trace_id
                )
            }
            # The causal story crosses the kill: chunks served on the
            # dead node and on the failover target share one trace.
            assert record.from_node in serve_nodes
            assert record.to_node in serve_nodes

    def test_stranded_and_rejected_traces_are_still_closed(
        self, scoped_run
    ):
        tracer = scoped_run.obs.tracer
        for span in tracer.spans(name="cluster.request"):
            assert span.end is not None, (
                f"unclosed root span for {span.session}"
            )
