"""Router behavior: typed rejects, least-loaded routing, determinism."""

import json

import pytest

from repro.api import OpenSessionRequest, RejectReason, SessionState
from repro.cluster import (
    build_cluster,
    run_cluster_failover_scenario,
    run_cluster_scale_scenario,
)

pytestmark = pytest.mark.cluster


def _small_cluster(**overrides):
    defaults = dict(
        nodes=3, titles=4, seconds=1.0, per_node_streams=4,
        min_replicas=2, clients=["alice", "bob"],
    )
    defaults.update(overrides)
    return build_cluster(**defaults)


class TestAdmission:
    def test_open_is_routed_to_a_replica(self):
        cluster, _ = _small_cluster()
        result = cluster.serve([
            OpenSessionRequest(client_id="alice", rope_id="T01"),
        ])
        [status] = result.statuses
        assert status.state is SessionState.COMPLETED
        assert status.node_id in cluster.placement.replicas("T01")
        assert result.admitted == 1

    def test_unknown_title_is_typed_unknown_rope(self):
        cluster, _ = _small_cluster()
        result = cluster.serve([
            OpenSessionRequest(client_id="alice", rope_id="T99"),
        ])
        assert result.admitted == 0
        [reject] = result.rejects
        assert reject.reject is RejectReason.UNKNOWN_ROPE

    def test_overload_is_typed_no_replica(self):
        # 2 replicas x 2 streams = 4 slots for T01; the 5th viewer must
        # be refused with the typed cluster reject, not an exception.
        cluster, _ = _small_cluster(
            per_node_streams=2,
            clients=[f"client-{i}" for i in range(5)],
        )
        slots = 2 * len(cluster.placement.replicas("T01"))
        requests = [
            OpenSessionRequest(client_id=f"client-{i}", rope_id="T01")
            for i in range(slots + 1)
        ]
        result = cluster.serve(requests)
        assert result.admitted == slots
        assert [r.reject for r in result.rejects] == [
            RejectReason.NO_REPLICA
        ]

    def test_routing_prefers_least_loaded_replica(self):
        cluster, _ = _small_cluster(
            clients=[f"client-{i}" for i in range(4)]
        )
        replicas = cluster.placement.replicas("T01")
        requests = [
            OpenSessionRequest(client_id=f"client-{i}", rope_id="T01")
            for i in range(4)
        ]
        result = cluster.serve(requests)
        placed = [s.node_id for s in result.statuses]
        # Opens alternate across the replica set instead of piling onto
        # the first node.
        counts = {node: placed.count(node) for node in replicas}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_admission_order_is_recorded(self):
        cluster, _ = _small_cluster()
        result = cluster.serve([
            OpenSessionRequest(
                client_id="bob", rope_id="T02", arrival=0.02
            ),
            OpenSessionRequest(
                client_id="alice", rope_id="T01", arrival=0.01
            ),
        ])
        # Sorted by arrival: alice first despite submission order.
        sessions = [sid for sid, _node in result.admission_order]
        by_id = {s.session_id: s for s in result.statuses}
        assert by_id[sessions[0]].client_id == "alice"


class TestDeterminism:
    def test_same_seed_and_fault_plan_byte_identical(self):
        # The ISSUE's router-determinism bar: same seed + same fault
        # plan => byte-identical placement map, admission order, and
        # handoff decisions across two independent runs.
        a = run_cluster_failover_scenario(seed=7)
        b = run_cluster_failover_scenario(seed=7)
        assert json.dumps(
            a.result.to_dict(), sort_keys=True
        ) == json.dumps(b.result.to_dict(), sort_keys=True)
        assert a.result.placement == b.result.placement
        assert a.result.admission_order == b.result.admission_order
        assert a.result.handoffs == b.result.handoffs

    def test_different_seed_changes_the_workload(self):
        a = run_cluster_scale_scenario(
            nodes=3, sessions=8, titles=4, per_node_streams=8, seed=1
        )
        b = run_cluster_scale_scenario(
            nodes=3, sessions=8, titles=4, per_node_streams=8, seed=2
        )
        assert a.result.admission_order != b.result.admission_order


class TestClusterObservability:
    def test_router_counters_and_spans(self):
        run = run_cluster_scale_scenario(
            nodes=3, sessions=8, titles=4, per_node_streams=8
        )
        registry = run.obs.registry
        opened = sum(
            registry.peek_counter(f"cluster.routed.{n.node_id}") or 0
            for n in run.result.nodes
        )
        assert opened == run.result.admitted
        roots = [
            span for span in run.obs.tracer.spans()
            if span.name == "cluster.request"
        ]
        assert len(roots) == len(run.result.statuses)

    def test_scale_run_reports_bounds(self):
        run = run_cluster_scale_scenario(
            nodes=3, sessions=8, titles=4, per_node_streams=8
        )
        assert run.bounds.full_catalog == 3 * 8
        assert run.result.admitted <= run.bounds.full_catalog
        assert run.bounds.demand_total == 8
