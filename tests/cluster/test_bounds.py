"""Analytical distributed-VoD bounds: closed forms and max-flow."""

import pytest

from repro.cluster import (
    CatalogTitle,
    PlacementMap,
    PlacementPolicy,
    bounds_for_placement,
    demand_max_flow,
    full_catalog_bound,
    single_video_bound,
    storage_feasible,
    zipf_popularity,
)
from repro.errors import ParameterError

pytestmark = pytest.mark.cluster


def _placement():
    return PlacementMap(assignments=(
        ("T01", ("node-00", "node-01")),
        ("T02", ("node-01", "node-02")),
        ("T03", ("node-02",)),
    ))


class TestClosedForms:
    def test_single_video_bound_is_replicas_times_u(self):
        assert single_video_bound(replicas=3, per_node_streams=8) == 24

    def test_full_catalog_bound_is_nodes_times_u(self):
        assert full_catalog_bound(nodes=20, per_node_streams=75) == 1500

    def test_storage_feasibility(self):
        assert storage_feasible(
            total_replicas=8, nodes=4, per_node_titles=2
        )
        assert not storage_feasible(
            total_replicas=9, nodes=4, per_node_titles=2
        )


class TestDemandMaxFlow:
    def test_satisfies_demand_within_capacity(self):
        flow = demand_max_flow(
            _placement(),
            demand={"T01": 4, "T02": 4, "T03": 2},
            per_node_streams=8,
        )
        assert flow == 10

    def test_capacity_caps_the_flow(self):
        # All demand targets T03's single replica: capped at u.
        flow = demand_max_flow(
            _placement(), demand={"T03": 10}, per_node_streams=4
        )
        assert flow == 4

    def test_shared_replica_contention(self):
        # T01 and T02 both use node-01; with u=2 the three titles
        # compete for 6 node-slots total but share node-01's 2.
        flow = demand_max_flow(
            _placement(),
            demand={"T01": 4, "T02": 4, "T03": 4},
            per_node_streams=2,
        )
        assert flow == 6

    def test_rejects_unplaced_demand(self):
        with pytest.raises(ParameterError):
            demand_max_flow(
                _placement(), demand={"T99": 1}, per_node_streams=4
            )

    def test_rejects_negative_demand(self):
        with pytest.raises(ParameterError):
            demand_max_flow(
                _placement(), demand={"T01": -1}, per_node_streams=4
            )


class TestBoundsForPlacement:
    def test_bounds_record_shape(self):
        catalog = [
            CatalogTitle(f"T{r:02d}", 1.0, zipf_popularity(r))
            for r in range(1, 5)
        ]
        placement = PlacementPolicy(min_replicas=2).plan(
            catalog, [f"node-{i:02d}" for i in range(3)], 8
        )
        bounds = bounds_for_placement(
            placement,
            nodes=3,
            per_node_streams=8,
            per_node_titles=4,
            demand={"T01": 5, "T02": 3},
        )
        payload = bounds.to_dict()
        assert payload["full_catalog"] == 24
        assert payload["demand_total"] == 8
        assert payload["demand_satisfiable"] <= payload["demand_total"]
        assert set(payload["single_video"]) == {
            "T01", "T02", "T03", "T04",
        }
        assert payload["storage_ok"] is True

    def test_single_video_entries_follow_replica_counts(self):
        bounds = bounds_for_placement(
            _placement(), nodes=3, per_node_streams=8
        )
        assert bounds.single_video == (
            ("T01", 16), ("T02", 16), ("T03", 8),
        )
