"""Node-kill failover: deterministic death, handoff, clean resumption."""

import pytest

from repro.api import SessionState
from repro.cluster import (
    run_cluster_failover_scenario,
    run_cluster_smoke_scenario,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def failover_run():
    # One shared run: the scenario is deterministic, so every test
    # reads the same facts.
    return run_cluster_failover_scenario()


class TestNodeDeath:
    def test_killed_node_is_reported_dead(self, failover_run):
        nodes = {n.node_id: n for n in failover_run.result.nodes}
        assert nodes["node-01"].alive is False
        survivors = [
            n for n in failover_run.result.nodes if n.alive
        ]
        assert len(survivors) == 3

    def test_node_death_is_counted(self, failover_run):
        registry = failover_run.obs.registry
        assert registry.peek_counter(
            "cluster.node_deaths.node-01"
        ) == 1


class TestHandoff:
    def test_affected_sessions_resume_elsewhere(self, failover_run):
        assert failover_run.affected > 0
        for record in failover_run.result.handoffs:
            assert record.from_node == "node-01"
            assert record.to_node is not None
            assert record.to_node != "node-01"

    def test_acceptance_bar_over_90_percent_clean(self, failover_run):
        clean = failover_run.clean_handoffs
        assert clean / failover_run.affected > 0.9

    def test_handed_off_sessions_complete_continuously(
        self, failover_run
    ):
        moved = {
            r.session_id for r in failover_run.result.handoffs
        }
        by_id = {
            s.session_id: s for s in failover_run.result.statuses
        }
        for session_id in moved:
            status = by_id[session_id]
            assert status.state is SessionState.COMPLETED
            assert status.handoffs >= 1
            assert status.continuous

    def test_handoff_clean_slo_holds(self, failover_run):
        summary = failover_run.obs.slo.summary_dict()
        assert "handoff-clean" not in summary["breached_now"]

    def test_every_session_still_continuous(self, failover_run):
        result = failover_run.result
        assert result.continuous_sessions == result.admitted
        assert not result.rejects


class TestStrandedSessions:
    def test_no_surviving_replica_is_a_dirty_handoff(self):
        # min_replicas=2 on 2 nodes: killing one leaves titles with a
        # single replica; the survivor's slack caps how many sessions
        # can land, so an undersized survivor strands the rest.
        run = run_cluster_failover_scenario(
            nodes=2,
            sessions=8,
            titles=2,
            per_node_streams=4,
            kill_node=1,
            kill_chunk=1,
            chunks=4,
        )
        stranded = [
            r for r in run.result.handoffs if r.to_node is None
        ]
        assert stranded, "expected at least one stranded session"
        by_id = {s.session_id: s for s in run.result.statuses}
        for record in stranded:
            assert not record.clean
            assert by_id[record.session_id].state is (
                SessionState.REJECTED
            )


class TestSmokeScenario:
    def test_smoke_gate_facts(self):
        run = run_cluster_smoke_scenario()
        result = run.result
        assert result.admitted == 12
        assert result.continuous_sessions == 12
        assert not result.rejects
        assert run.affected > 0
        assert run.clean_handoffs == run.affected


class TestFaultPlanForwarding:
    def test_transient_faults_reach_node_drives(self):
        # Non-HEAD faults in the plan attach to the addressed node's
        # private drive injector instead of killing anything.
        from repro.cluster import build_cluster

        plan = FaultPlan([
            FaultSpec(
                kind=FaultKind.TRANSIENT,
                at_op=1,
                drive_index=0,
            )
        ], seed=3)
        cluster, _ = build_cluster(
            nodes=3, titles=3, per_node_streams=8, fault_plan=plan,
            warm=False,
        )
        drives = [
            node.server.mrs.msm.drive for node in cluster.nodes
        ]
        assert drives[0].injector is not None
        assert drives[1].injector is None
        assert all(node.alive for node in cluster.nodes)

    def test_plan_addressing_a_missing_node_is_an_error(self):
        from repro.cluster import build_cluster
        from repro.errors import ParameterError

        plan = FaultPlan([
            FaultSpec(
                kind=FaultKind.HEAD_FAILURE, at_op=0, drive_index=9
            )
        ], seed=3)
        with pytest.raises(ParameterError, match="node index 9"):
            build_cluster(
                nodes=2, titles=2, per_node_streams=4,
                fault_plan=plan, warm=False,
            )
