"""Placement policy: popularity-aware mirroring and striping."""

import pytest

from repro.cluster import (
    CatalogTitle,
    PlacementMap,
    PlacementPolicy,
    demand_from_counters,
    zipf_popularity,
)
from repro.errors import ParameterError
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.cluster


def _catalog(n, seconds=1.0):
    return [
        CatalogTitle(
            title_id=f"T{rank:02d}",
            seconds=seconds,
            popularity=zipf_popularity(rank),
        )
        for rank in range(1, n + 1)
    ]


def _nodes(n):
    return [f"node-{i:02d}" for i in range(n)]


class TestZipf:
    def test_weights_decay_with_rank(self):
        assert zipf_popularity(1) == 1.0
        assert zipf_popularity(2) == 0.5
        assert zipf_popularity(4) == 0.25

    def test_rank_must_be_positive(self):
        with pytest.raises(ParameterError):
            zipf_popularity(0)


class TestPlacementMap:
    def test_rejects_duplicate_titles(self):
        with pytest.raises(ParameterError, match="more than once"):
            PlacementMap(assignments=(
                ("T01", ("node-00",)), ("T01", ("node-01",)),
            ))

    def test_rejects_empty_replica_set(self):
        with pytest.raises(ParameterError, match="no replicas"):
            PlacementMap(assignments=(("T01", ()),))

    def test_rejects_repeated_node(self):
        with pytest.raises(ParameterError, match="twice"):
            PlacementMap(assignments=(("T01", ("node-00", "node-00")),))

    def test_lookups(self):
        placement = PlacementMap(assignments=(
            ("T01", ("node-00", "node-01")),
            ("T02", ("node-01",)),
        ))
        assert placement.replicas("T01") == ("node-00", "node-01")
        assert placement.titles_on("node-01") == ("T01", "T02")
        assert placement.has_title("T02")
        assert not placement.has_title("T99")
        assert placement.replica_counts() == {"T01": 2, "T02": 1}


class TestPolicy:
    def test_every_title_gets_min_replicas(self):
        placement = PlacementPolicy(min_replicas=2).plan(
            _catalog(8), _nodes(4), per_node_streams=8
        )
        for title, replicas in placement.assignments:
            assert len(replicas) >= 2, title

    def test_popular_titles_get_more_replicas(self):
        # With a strongly skewed catalog the rank-1 title needs more
        # mirrors than the tail to reach its share of the capacity.
        placement = PlacementPolicy(min_replicas=1).plan(
            _catalog(8), _nodes(8), per_node_streams=4
        )
        counts = placement.replica_counts()
        assert counts["T01"] > counts["T08"]

    def test_plan_is_deterministic(self):
        args = (_catalog(10), _nodes(5), 8)
        a = PlacementPolicy(min_replicas=2).plan(*args)
        b = PlacementPolicy(min_replicas=2).plan(*args)
        assert a == b

    def test_striping_leaves_no_node_empty(self):
        # Striping balances expected demand, not raw title counts: a
        # node can absorb many light tail titles, but none may sit idle
        # while the catalog has work to mirror.
        placement = PlacementPolicy(min_replicas=2).plan(
            _catalog(10), _nodes(5), per_node_streams=8
        )
        per_node = [
            len(placement.titles_on(node)) for node in _nodes(5)
        ]
        assert min(per_node) >= 1

    def test_hot_title_lands_on_distinct_nodes_first(self):
        # The rank-1 title is placed first and takes the emptiest
        # nodes; its replica set never repeats a node.
        placement = PlacementPolicy(min_replicas=2).plan(
            _catalog(10), _nodes(5), per_node_streams=8
        )
        replicas = placement.replicas("T01")
        assert len(set(replicas)) == len(replicas)

    def test_demand_override_beats_declared_popularity(self):
        catalog = _catalog(4)
        # Observed demand inverts the Zipf ranking: the nominal tail
        # title is actually the hot one.
        hot_tail = PlacementPolicy(min_replicas=1).plan(
            catalog, _nodes(4), per_node_streams=2,
            demand={"T04": 100.0, "T01": 1.0},
        )
        counts = hot_tail.replica_counts()
        assert counts["T04"] > counts["T01"]

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            PlacementPolicy(min_replicas=0)
        with pytest.raises(ParameterError):
            PlacementPolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ParameterError, match="non-empty"):
            PlacementPolicy().plan([], _nodes(2), 4)
        with pytest.raises(ParameterError, match="duplicate"):
            PlacementPolicy().plan(
                _catalog(2), ["node-00", "node-00"], 4
            )


class TestDemandFromCounters:
    def test_reads_router_open_counters(self):
        registry = MetricsRegistry()
        registry.counter("cluster.opens.T01").inc(7)
        registry.counter("cluster.opens.T03").inc(2)
        observed = demand_from_counters(registry, _catalog(3))
        assert observed == {"T01": 7.0, "T03": 2.0}

    def test_unopened_titles_are_absent(self):
        observed = demand_from_counters(MetricsRegistry(), _catalog(2))
        assert observed == {}
