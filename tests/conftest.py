"""Shared fixtures for the test suite."""

import random

import pytest

from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import FreeMap, build_drive
from repro.fs import MultimediaStorageManager
from repro.rope import MultimediaRopeServer


@pytest.fixture
def profile():
    """The standard §5 testbed profile."""
    return TESTBED_1991


@pytest.fixture
def drive():
    """A fresh testbed drive."""
    return build_drive()


@pytest.fixture
def freemap(drive):
    """A fresh free map matching the drive."""
    return FreeMap(drive.slots)


@pytest.fixture
def disk_params(drive):
    """Analytic parameters derived from the testbed drive."""
    return drive.parameters()


@pytest.fixture
def video_block(profile):
    """The standard 4-frame video block model."""
    return video_block_model(profile.video, 4)


@pytest.fixture
def msm(profile, drive):
    """A storage manager on a fresh drive."""
    return MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )


@pytest.fixture
def mrs(msm):
    """A rope server over the fresh storage manager."""
    return MultimediaRopeServer(msm)


@pytest.fixture
def rng():
    """A deterministic random source."""
    return random.Random(12345)
