"""Shared fixtures for the test suite."""

import random
from pathlib import Path

import pytest

from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import FreeMap, build_drive
from repro.fs import MultimediaStorageManager
from repro.rope import MultimediaRopeServer


GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ baselines from the current run",
    )


@pytest.fixture
def golden(request):
    """Compare *content* against a committed golden file, byte for byte.

    Usage: ``golden("steady_snapshot.json", run.snapshot())``.  With
    ``--regen-golden`` the file is rewritten instead of compared — the
    diff then goes through code review like any other change.
    """
    regen = request.config.getoption("--regen-golden")

    def check(name: str, content: str) -> None:
        if not content.endswith("\n"):
            content += "\n"
        path = GOLDEN_DIR / name
        if regen:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(content)
            return
        assert path.exists(), (
            f"golden file {path} missing; regenerate intentionally with "
            "`pytest --regen-golden`"
        )
        expected = path.read_text()
        assert content == expected, (
            f"{name} drifted from its golden baseline; inspect the diff "
            "and, if the change is intended, run `pytest --regen-golden`"
        )

    return check


@pytest.fixture
def profile():
    """The standard §5 testbed profile."""
    return TESTBED_1991


@pytest.fixture
def drive():
    """A fresh testbed drive."""
    return build_drive()


@pytest.fixture
def freemap(drive):
    """A fresh free map matching the drive."""
    return FreeMap(drive.slots)


@pytest.fixture
def disk_params(drive):
    """Analytic parameters derived from the testbed drive."""
    return drive.parameters()


@pytest.fixture
def video_block(profile):
    """The standard 4-frame video block model."""
    return video_block_model(profile.video, 4)


@pytest.fixture
def msm(profile, drive):
    """A storage manager on a fresh drive."""
    return MultimediaStorageManager(
        drive,
        profile.video,
        profile.audio,
        profile.video_device,
        profile.audio_device,
    )


@pytest.fixture
def mrs(msm):
    """A rope server over the fresh storage manager."""
    return MultimediaRopeServer(msm)


@pytest.fixture
def rng():
    """A deterministic random source."""
    return random.Random(12345)
