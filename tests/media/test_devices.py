"""Unit tests for device buffers and capture/display devices."""

import pytest

from repro.core.symbols import DisplayDeviceParameters
from repro.errors import ParameterError
from repro.media.devices import CaptureDevice, DeviceBuffer, DisplayDevice


class TestDeviceBuffer:
    def test_deposit_consume(self):
        buffer = DeviceBuffer(4)
        buffer.deposit(2)
        assert buffer.occupied == 2
        assert buffer.free == 2
        buffer.consume()
        assert buffer.occupied == 1

    def test_high_water(self):
        buffer = DeviceBuffer(4)
        buffer.deposit(3)
        buffer.consume(2)
        buffer.deposit(1)
        assert buffer.high_water == 3

    def test_overrun_raises(self):
        buffer = DeviceBuffer(2)
        buffer.deposit(2)
        assert buffer.is_full
        with pytest.raises(ParameterError):
            buffer.deposit()

    def test_underrun_raises(self):
        buffer = DeviceBuffer(2)
        assert buffer.is_empty
        with pytest.raises(ParameterError):
            buffer.consume()

    def test_counters(self):
        buffer = DeviceBuffer(8)
        buffer.deposit(5)
        buffer.consume(3)
        assert buffer.deposits == 5
        assert buffer.consumptions == 3

    def test_reset(self):
        buffer = DeviceBuffer(4)
        buffer.deposit(4)
        buffer.reset()
        assert buffer.is_empty
        assert buffer.high_water == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ParameterError):
            DeviceBuffer(0)


class TestDisplayDevice:
    def test_display_time(self):
        device = DisplayDevice(
            DisplayDeviceParameters(display_rate=1e6), buffer_blocks=2
        )
        assert device.display_time(5e5) == pytest.approx(0.5)

    def test_buffer_created_with_requested_blocks(self):
        device = DisplayDevice(
            DisplayDeviceParameters(display_rate=1e6), buffer_blocks=5
        )
        assert device.buffer.capacity == 5

    def test_rejects_negative_bits(self):
        device = DisplayDevice(DisplayDeviceParameters(display_rate=1e6))
        with pytest.raises(ParameterError):
            device.display_time(-1)


class TestCaptureDevice:
    def test_capture_time_mirrors_display(self):
        """Paper assumption (2): capture time ≈ display time."""
        params = DisplayDeviceParameters(display_rate=2e6)
        display = DisplayDevice(params)
        capture = CaptureDevice(params)
        assert capture.capture_time(1e6) == pytest.approx(
            display.display_time(1e6)
        )
