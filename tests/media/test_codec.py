"""Unit tests for compression models."""

import pytest

from repro.errors import ParameterError
from repro.media.codec import DifferencingCodec, FixedRateCodec


class TestFixedRateCodec:
    def test_compression(self):
        codec = FixedRateCodec(ratio=18.0)
        assert codec.compressed_bits(1800.0, 0) == pytest.approx(100.0)
        assert codec.compressed_bits(1800.0, 99) == pytest.approx(100.0)

    def test_mean_equals_every_frame(self):
        codec = FixedRateCodec(ratio=4.0)
        assert codec.mean_compressed_bits(400.0) == pytest.approx(100.0)

    def test_rejects_expansion(self):
        with pytest.raises(ParameterError):
            FixedRateCodec(ratio=0.5)

    def test_rejects_bad_raw_size(self):
        codec = FixedRateCodec(ratio=2.0)
        with pytest.raises(ParameterError):
            codec.compressed_bits(0.0, 0)


class TestDifferencingCodec:
    def test_key_frames_on_group_boundary(self):
        codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=10)
        raw = 2000.0
        assert codec.compressed_bits(raw, 0) == pytest.approx(1000.0)
        assert codec.compressed_bits(raw, 10) == pytest.approx(1000.0)
        assert codec.compressed_bits(raw, 5) == pytest.approx(100.0)

    def test_mean_between_key_and_diff(self):
        codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=10)
        raw = 2000.0
        mean = codec.mean_compressed_bits(raw)
        assert 100.0 < mean < 1000.0
        # Exactly (1 key + 9 diffs) / 10.
        assert mean == pytest.approx((1000.0 + 9 * 100.0) / 10)

    def test_mean_below_fixed_rate_at_key_ratio(self):
        """§6.2: differencing yields smaller average frames."""
        fixed = FixedRateCodec(ratio=2.0)
        diff = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0)
        raw = 2000.0
        assert diff.mean_compressed_bits(raw) < (
            fixed.mean_compressed_bits(raw)
        )

    def test_deterministic(self):
        codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0)
        assert codec.compressed_bits(1000.0, 7) == (
            codec.compressed_bits(1000.0, 7)
        )

    def test_rejects_diff_smaller_than_key(self):
        with pytest.raises(ParameterError):
            DifferencingCodec(key_ratio=10.0, diff_ratio=5.0)

    def test_rejects_negative_index(self):
        codec = DifferencingCodec(key_ratio=2.0, diff_ratio=4.0)
        with pytest.raises(ParameterError):
            codec.compressed_bits(1000.0, -1)
