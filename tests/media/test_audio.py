"""Unit tests for audio chunks, energy, and silence detection."""

import random

import pytest

from repro.config import TESTBED_1991
from repro.errors import ParameterError
from repro.media.audio import (
    AudioChunk,
    SilenceDetector,
    chunks_to_blocks,
    generate_talk_spurts,
    silence_fraction,
)


@pytest.fixture
def stream():
    return TESTBED_1991.audio


class TestAudioChunk:
    def test_end_sample(self):
        chunk = AudioChunk(start_sample=100, count=50, energy=0.5)
        assert chunk.end_sample == 150

    def test_duration(self, stream):
        chunk = AudioChunk(start_sample=0, count=8000, energy=0.5)
        assert chunk.duration(stream) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            AudioChunk(start_sample=-1, count=10, energy=0.5)
        with pytest.raises(ParameterError):
            AudioChunk(start_sample=0, count=0, energy=0.5)
        with pytest.raises(ParameterError):
            AudioChunk(start_sample=0, count=10, energy=1.5)


class TestSilenceDetector:
    def test_threshold(self):
        detector = SilenceDetector(threshold=0.1)
        assert detector.is_silent(0.05)
        assert not detector.is_silent(0.1)
        assert not detector.is_silent(0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            SilenceDetector(threshold=2.0)


class TestTalkSpurts:
    def test_covers_duration_exactly(self, stream):
        rng = random.Random(1)
        chunks = generate_talk_spurts(stream, 30.0, 0.4, rng)
        assert chunks[0].start_sample == 0
        assert chunks[-1].end_sample == int(30.0 * stream.sample_rate)
        for a, b in zip(chunks, chunks[1:]):
            assert b.start_sample == a.end_sample

    def test_silence_ratio_approximated(self, stream):
        rng = random.Random(42)
        chunks = generate_talk_spurts(stream, 300.0, 0.5, rng)
        silent = sum(c.count for c in chunks if c.energy < 0.1)
        total = chunks[-1].end_sample
        assert silent / total == pytest.approx(0.5, abs=0.15)

    def test_zero_silence(self, stream):
        rng = random.Random(3)
        chunks = generate_talk_spurts(stream, 20.0, 0.0, rng)
        assert all(c.energy >= 0.2 for c in chunks)

    def test_deterministic_with_seed(self, stream):
        first = generate_talk_spurts(stream, 10.0, 0.3, random.Random(5))
        second = generate_talk_spurts(stream, 10.0, 0.3, random.Random(5))
        assert first == second

    def test_rejects_bad_ratio(self, stream):
        with pytest.raises(ParameterError):
            generate_talk_spurts(stream, 10.0, 1.0, random.Random(1))


class TestBlockEnergies:
    def test_uniform_chunk_uniform_blocks(self):
        chunks = [AudioChunk(start_sample=0, count=1000, energy=0.5)]
        energies = list(chunks_to_blocks(chunks, 100))
        assert len(energies) == 10
        assert all(e == pytest.approx(0.5) for e in energies)

    def test_weighted_average_across_chunks(self):
        chunks = [
            AudioChunk(start_sample=0, count=50, energy=0.8),
            AudioChunk(start_sample=50, count=50, energy=0.2),
        ]
        energies = list(chunks_to_blocks(chunks, 100))
        assert energies == [pytest.approx(0.5)]

    def test_partial_final_block(self):
        chunks = [AudioChunk(start_sample=0, count=150, energy=0.6)]
        energies = list(chunks_to_blocks(chunks, 100))
        assert len(energies) == 2
        assert energies[1] == pytest.approx(0.6)

    def test_empty_input(self):
        assert list(chunks_to_blocks([], 100)) == []

    def test_rejects_bad_block_size(self):
        with pytest.raises(ParameterError):
            list(chunks_to_blocks([], 0))

    def test_silence_fraction(self):
        chunks = [
            AudioChunk(start_sample=0, count=100, energy=0.02),
            AudioChunk(start_sample=100, count=100, energy=0.8),
        ]
        assert silence_fraction(chunks, 100) == pytest.approx(0.5)
