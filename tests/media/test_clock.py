"""Unit tests for media clocks and §3.2 synchronization."""

import pytest

from repro.errors import ParameterError
from repro.media.clock import (
    MediaClock,
    continuous,
    forced_display_times,
    is_automatic,
    lateness,
    max_lateness,
)


@pytest.fixture
def clock():
    return MediaClock(start=1.0, period=0.1)


class TestMediaClock:
    def test_deadlines(self, clock):
        assert clock.deadline(0) == pytest.approx(1.0)
        assert clock.deadline(5) == pytest.approx(1.5)
        assert clock.deadlines(3) == [
            pytest.approx(1.0), pytest.approx(1.1), pytest.approx(1.2)
        ]

    def test_rejects_negative_block(self, clock):
        with pytest.raises(ParameterError):
            clock.deadline(-1)

    def test_rejects_zero_period(self):
        with pytest.raises(ParameterError):
            MediaClock(start=0.0, period=0.0)


class TestForcedSynchronization:
    def test_early_blocks_wait_for_deadline(self, clock):
        arrivals = [0.5, 0.6, 1.15]
        times = forced_display_times(arrivals, clock)
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.1)
        assert times[2] == pytest.approx(1.2)

    def test_late_blocks_display_on_arrival(self, clock):
        arrivals = [1.05, 1.3]
        times = forced_display_times(arrivals, clock)
        assert times[0] == pytest.approx(1.05)
        assert times[1] == pytest.approx(1.3)

    def test_wait_overhead_charged_only_on_waits(self, clock):
        arrivals = [0.5, 1.3]
        times = forced_display_times(arrivals, clock, wait_overhead=0.01)
        assert times[0] == pytest.approx(1.01)  # waited: overhead added
        assert times[1] == pytest.approx(1.3)   # late: no wait, no overhead

    def test_rejects_negative_overhead(self, clock):
        with pytest.raises(ParameterError):
            forced_display_times([1.0], clock, wait_overhead=-1.0)


class TestAutomaticSynchronization:
    def test_exact_match_is_automatic(self):
        assert is_automatic(0.1, 0.1)

    def test_mismatch_is_not(self):
        assert not is_automatic(0.09, 0.1)
        assert not is_automatic(0.11, 0.1)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ParameterError):
            is_automatic(-0.1, 0.1)
        with pytest.raises(ParameterError):
            is_automatic(0.1, 0.0)


class TestLatenessMetrics:
    def test_lateness_signs(self, clock):
        arrivals = [0.9, 1.2]
        values = lateness(arrivals, clock)
        assert values[0] == pytest.approx(-0.1)
        assert values[1] == pytest.approx(0.1)

    def test_max_lateness_and_continuous(self, clock):
        assert max_lateness([0.9, 1.05], clock) == pytest.approx(-0.05)
        assert continuous([0.9, 1.05], clock)
        assert not continuous([1.2], clock)

    def test_empty_playback_is_continuous(self, clock):
        assert continuous([], clock)
        assert max_lateness([], clock) == 0.0
