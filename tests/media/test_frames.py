"""Unit tests for video frame generation."""

import pytest

from repro.config import TESTBED_1991
from repro.errors import ParameterError
from repro.media.codec import DifferencingCodec, FixedRateCodec
from repro.media.frames import (
    Frame,
    frames_for_duration,
    generate_frames,
    ntsc_raw_frame_bits,
    raw_frame_bits,
)


class TestRawSizes:
    def test_ntsc_prototype_frame(self):
        # 480 x 200 x 12 bits (§5.1).
        assert ntsc_raw_frame_bits() == 480 * 200 * 12

    def test_raw_frame_bits(self):
        assert raw_frame_bits(10, 10, 8) == 800

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ParameterError):
            raw_frame_bits(0, 10, 8)


class TestFrame:
    def test_validation(self):
        with pytest.raises(ParameterError):
            Frame(index=-1, size_bits=100, timestamp=0.0, token="t")
        with pytest.raises(ParameterError):
            Frame(index=0, size_bits=0, timestamp=0.0, token="t")
        with pytest.raises(ParameterError):
            Frame(index=0, size_bits=100, timestamp=-1.0, token="t")


class TestGeneration:
    def test_count_and_timestamps(self):
        stream = TESTBED_1991.video
        frames = list(generate_frames(stream, 10))
        assert len(frames) == 10
        assert frames[0].timestamp == 0.0
        assert frames[3].timestamp == pytest.approx(3 / 30)

    def test_tokens_unique_and_ordered(self):
        stream = TESTBED_1991.video
        frames = list(generate_frames(stream, 5, source="camX"))
        tokens = [f.token for f in frames]
        assert tokens == [f"camX:frame:{i}" for i in range(5)]

    def test_default_sizes_are_nominal(self):
        stream = TESTBED_1991.video
        frames = list(generate_frames(stream, 3))
        assert all(f.size_bits == stream.frame_size for f in frames)

    def test_fixed_codec_shrinks_frames(self):
        stream = TESTBED_1991.video
        codec = FixedRateCodec(ratio=2.0)
        frames = list(generate_frames(stream, 3, codec=codec))
        # Codec recovers the raw size via nominal_ratio, then compresses.
        assert all(
            f.size_bits == pytest.approx(stream.frame_size)
            for f in frames
        )

    def test_differencing_codec_varies_sizes(self):
        stream = TESTBED_1991.video
        codec = DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=5)
        frames = list(generate_frames(stream, 10, codec=codec))
        sizes = {f.size_bits for f in frames}
        assert len(sizes) == 2  # key size and diff size
        assert frames[0].size_bits > frames[1].size_bits

    def test_frames_for_duration(self):
        stream = TESTBED_1991.video
        frames = frames_for_duration(stream, 2.0)
        assert len(frames) == 60

    def test_negative_duration_rejected(self):
        with pytest.raises(ParameterError):
            frames_for_duration(TESTBED_1991.video, -1.0)

    def test_zero_count_ok(self):
        assert list(generate_frames(TESTBED_1991.video, 0)) == []
