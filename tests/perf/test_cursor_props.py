"""Hypothesis: the consumption cursor equals the reference rescan.

Randomized delivery schedules (ready times and durations), randomized
clock starts, and randomized — deliberately non-monotone — query
sequences: for every query, ``consumed_at`` / ``buffered_at`` /
``next_consumption_time`` through the cached cursor must equal a fresh
O(n) rescan of the same schedule.  The non-monotone queries force the
cursor's cold fallback path; interleaved monotone runs exercise the
amortized advance.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.rounds import StreamState, consumed_prefix

pytestmark = pytest.mark.perf

times = st.floats(
    min_value=0.0, max_value=200.0,
    allow_nan=False, allow_infinity=False,
)
durations = st.floats(
    min_value=0.0, max_value=10.0,
    allow_nan=False, allow_infinity=False,
)

schedules = st.lists(st.tuples(times, durations), max_size=40)
queries = st.lists(
    st.floats(
        min_value=0.0, max_value=500.0,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1, max_size=60,
)


def _reference_next_consumption(deliveries, start, now):
    count, elapsed = consumed_prefix(deliveries, start, now)
    if count >= len(deliveries):
        return math.inf
    ready, _deadline, duration = deliveries[count]
    return max(elapsed, ready) + duration


def _stream_with(schedule, clock_start):
    stream = StreamState(
        request_id="prop", fetches=(), buffer_capacity=1,
    )
    stream.deliveries = [
        (ready, 0.0, duration) for ready, duration in schedule
    ]
    stream.clock_start = clock_start
    return stream


class TestCursorMatchesReference:
    @settings(deadline=None, max_examples=200)
    @given(schedule=schedules, clock_start=times, now_values=queries)
    def test_arbitrary_query_order(
        self, schedule, clock_start, now_values
    ):
        stream = _stream_with(schedule, clock_start)
        for now in now_values:
            expect_count, _ = consumed_prefix(
                stream.deliveries, clock_start, now
            )
            assert stream.consumed_at(now) == expect_count
            assert stream.buffered_at(now) == (
                len(stream.deliveries) - expect_count
            )
            assert stream.next_consumption_time(now) == (
                _reference_next_consumption(
                    stream.deliveries, clock_start, now
                )
            )

    @settings(deadline=None, max_examples=100)
    @given(schedule=schedules, clock_start=times, now_values=queries)
    def test_monotone_query_order(
        self, schedule, clock_start, now_values
    ):
        stream = _stream_with(schedule, clock_start)
        for now in sorted(now_values):
            expect_count, _ = consumed_prefix(
                stream.deliveries, clock_start, now
            )
            assert stream.consumed_at(now) == expect_count

    @settings(deadline=None, max_examples=50)
    @given(schedule=schedules, now_values=queries)
    def test_unstarted_clock_consumes_nothing(self, schedule, now_values):
        stream = StreamState(
            request_id="prop", fetches=(), buffer_capacity=1,
        )
        stream.deliveries = [
            (ready, 0.0, duration) for ready, duration in schedule
        ]
        for now in now_values:
            assert stream.consumed_at(now) == 0
            assert stream.buffered_at(now) == len(stream.deliveries)
            assert stream.next_consumption_time(now) == math.inf
