"""Operation-count invariants: the O(1) fast paths stay O(1).

These tests wrap the hot-path collaborators with counting proxies and
assert *how much work* a service run performs, not just what it returns:

* the :class:`StreamState` consumption cursor never falls back to the
  O(n) reference rescan during a (monotone-time) service run;
* :class:`TableSeek` interpolates each distance once, ever;
* the generic ``max_distance_within`` binary search runs once per
  distinct ``(budget, cylinders)`` pair;
* :meth:`SimulatedDrive.read_slot` costs exactly one seek-curve
  evaluation per access.

If a future change quietly reintroduces a rescan or a per-access
recomputation, these counters move and the suite fails — the perf
guarantee is pinned behaviorally, without timing flakiness.
"""

import pytest

import repro.service.rounds as rounds_module
from repro.disk.factory import TESTBED_DRIVE, build_drive
from repro.disk.seek import LinearSeek, SeekModel, TableSeek
from repro.perf.scenarios import ScaleScenario, build_streams
from repro.service.rounds import RoundRobinService, consumed_prefix

pytestmark = pytest.mark.perf


class CountingSeek(SeekModel):
    """Delegating seek-curve wrapper that counts :meth:`seek_time` calls."""

    def __init__(self, inner: SeekModel):
        self.inner = inner
        self.seek_time_calls = 0

    def seek_time(self, distance: int) -> float:
        self.seek_time_calls += 1
        return self.inner.seek_time(distance)


class CountingTableSeek(TableSeek):
    """TableSeek that counts actual (uncached) interpolations."""

    def __init__(self, points):
        super().__init__(points)
        self.interpolations = 0

    def _interpolate_seek_time(self, distance: int) -> float:
        self.interpolations += 1
        return super()._interpolate_seek_time(distance)


def _service_run(streams=8, blocks=60):
    scenario = ScaleScenario(
        name="count", streams=streams, blocks_per_stream=blocks,
        k=4, buffer_capacity=6, seed=7,
    )
    drive = build_drive()
    initial, admissions = build_streams(scenario, drive)
    service = RoundRobinService(drive, lambda _r, _n: scenario.k)
    metrics = service.run(initial, admissions)
    return metrics, streams * blocks


class TestObsOffFastPath:
    """With observability off, the service loop does zero obs work.

    The obs-off configuration (``obs=None``) must not construct spans,
    timeline events, or metric instruments anywhere on the hot path —
    not merely discard them.  Counting proxies on the class methods pin
    that the calls never happen, so the fast path stays allocation-free
    regardless of how the gated branches evolve.
    """

    def test_obs_off_run_performs_no_obs_operations(self, monkeypatch):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.timeline import SessionTimeline
        from repro.obs.tracing import SpanTracer

        calls = {"span": 0, "timeline": 0, "counter": 0, "histogram": 0}

        def counting(kind, inner):
            def wrapper(self, *args, **kwargs):
                calls[kind] += 1
                return inner(self, *args, **kwargs)
            return wrapper

        monkeypatch.setattr(
            SpanTracer, "start_span",
            counting("span", SpanTracer.start_span),
        )
        monkeypatch.setattr(
            SessionTimeline, "record",
            counting("timeline", SessionTimeline.record),
        )
        monkeypatch.setattr(
            MetricsRegistry, "counter",
            counting("counter", MetricsRegistry.counter),
        )
        monkeypatch.setattr(
            MetricsRegistry, "histogram",
            counting("histogram", MetricsRegistry.histogram),
        )

        metrics, total_blocks = _service_run()
        assert sum(m.blocks_delivered for m in metrics.values()) == (
            total_blocks
        )
        assert calls == {
            "span": 0, "timeline": 0, "counter": 0, "histogram": 0,
        }, f"obs-off service run still did obs work: {calls}"

    def test_obs_off_streams_carry_no_trace_state(self):
        scenario = ScaleScenario(
            name="no-trace", streams=3, blocks_per_stream=20,
            k=4, buffer_capacity=6, seed=1,
        )
        drive = build_drive()
        initial, _ = build_streams(scenario, drive)
        service = RoundRobinService(drive, lambda _r, _n: scenario.k)
        service.run(initial)
        for stream in initial:
            assert stream.trace is None


class TestConsumptionCursor:
    def test_service_run_never_rescans(self, monkeypatch):
        """The monotone service loop stays on the O(1) cursor path."""
        calls = []

        def spying_prefix(deliveries, start, now):
            calls.append(now)
            return consumed_prefix(deliveries, start, now)

        monkeypatch.setattr(
            rounds_module, "consumed_prefix", spying_prefix
        )
        metrics, total_blocks = _service_run()
        assert sum(m.blocks_delivered for m in metrics.values()) == (
            total_blocks
        )
        assert calls == [], (
            "service run hit the O(n) reference rescan "
            f"{len(calls)} times; the cursor hot path regressed"
        )

    def test_cursor_consumes_each_block_once(self):
        """Cursor work is bounded by delivered blocks (amortized O(1))."""
        scenario = ScaleScenario(
            name="amortized", streams=4, blocks_per_stream=80,
            k=4, buffer_capacity=6, seed=3,
        )
        drive = build_drive()
        initial, _ = build_streams(scenario, drive)
        service = RoundRobinService(drive, lambda _r, _n: scenario.k)
        service.run(initial)
        for stream in initial:
            assert stream._consumed_count <= len(stream.deliveries)


class TestTableSeekMemo:
    POINTS = [(1, 0.004), (100, 0.012), (1000, 0.025)]

    def test_each_distance_interpolated_once(self):
        seek = CountingTableSeek(self.POINTS)
        distances = [0, 1, 7, 100, 450, 1000, 2000]
        expected = [seek.seek_time(d) for d in distances]
        assert seek.interpolations == len(distances)
        for _ in range(100):
            got = [seek.seek_time(d) for d in distances]
            assert got == expected
        assert seek.interpolations == len(distances)

    def test_cache_preserves_curve_values(self):
        cached = TableSeek(self.POINTS)
        reference = TableSeek(self.POINTS)
        for d in range(0, 2001, 13):
            assert cached.seek_time(d) == (
                reference._interpolate_seek_time(d)
            )


class TestInverseMemo:
    def test_generic_inversion_binary_searches_once(self):
        seek = CountingSeek(LinearSeek(settle_time=0.003, slope=2e-5))
        first = seek.max_distance_within(0.010, 1024)
        searched = seek.seek_time_calls
        assert searched > 0  # the binary search really ran
        for _ in range(50):
            assert seek.max_distance_within(0.010, 1024) == first
        assert seek.seek_time_calls == searched

    def test_memo_matches_uncached_inversion(self):
        seek = CountingSeek(LinearSeek(settle_time=0.003, slope=2e-5))
        for budget in (0.0, 0.003, 0.0051, 0.010, 1.0):
            for cylinders in (8, 1024):
                assert seek.max_distance_within(budget, cylinders) == (
                    seek._invert_seek_time(budget, cylinders)
                )


class TestDriveAccessCost:
    def test_one_seek_evaluation_per_read(self):
        counting = CountingSeek(TESTBED_DRIVE.seek_model())
        drive = build_drive()
        drive.seek_model = counting
        reads = 200
        for i in range(reads):
            drive.read_slot((i * 37) % drive.slots)
        assert counting.seek_time_calls == reads

    def test_full_block_fast_path_matches_explicit_bits(self):
        a, b = build_drive(), build_drive()
        for i in range(50):
            slot = (i * 101) % a.slots
            assert a.read_slot(slot) == b.read_slot(slot, b.block_bits)
        assert a.stats.busy_time == b.stats.busy_time
