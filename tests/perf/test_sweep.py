"""Unit tests for the parallel sweep runner and its CLI command."""

import json

import pytest

from repro.cli import main
from repro.errors import ParameterError
from repro.perf import (
    ScaleScenario,
    run_scale_scenario,
    run_sweep,
    scale_grid,
)

pytestmark = pytest.mark.perf


def _stable(result):
    """Result fields that must be reproducible (timings excluded)."""
    row = result.to_dict()
    row.pop("wall_time_s")
    row.pop("blocks_per_second")
    row.pop("streams_per_second")
    return row


class TestScenario:
    def test_deterministic_across_runs(self):
        scenario = ScaleScenario(
            name="det", streams=5, blocks_per_stream=30, seed=2,
        )
        assert _stable(run_scale_scenario(scenario)) == (
            _stable(run_scale_scenario(scenario))
        )

    def test_delivers_every_block(self):
        scenario = ScaleScenario(
            name="full", streams=4, blocks_per_stream=25,
            arrivals="staggered",
        )
        result = run_scale_scenario(scenario)
        assert result.blocks_delivered == 4 * 25
        assert result.rounds > 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            ScaleScenario(name="bad", streams=0, blocks_per_stream=1)
        with pytest.raises(ParameterError):
            ScaleScenario(
                name="bad", streams=1, blocks_per_stream=1,
                drive="floppy",
            )
        with pytest.raises(ParameterError):
            ScaleScenario(
                name="bad", streams=1, blocks_per_stream=1,
                arrivals="sideways",
            )


class TestGrid:
    def test_cartesian_size_and_names(self):
        grid = scale_grid(
            [2, 4], 10, seeds=(0, 1, 2), drives=("testbed", "fast"),
            arrivals=("uniform", "staggered"),
        )
        assert len(grid) == 2 * 3 * 2 * 2
        names = [s.name for s in grid]
        assert len(set(names)) == len(names)


class TestSweep:
    def test_serial_and_parallel_agree(self):
        grid = scale_grid([2, 3], 12, seeds=(0, 1))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        assert not serial.parallel
        assert [r.name for r in serial.results] == [s.name for s in grid]
        assert [_stable(r) for r in serial.results] == (
            [_stable(r) for r in parallel.results]
        )

    def test_empty_sweep_rejected(self):
        with pytest.raises(ParameterError):
            run_sweep([])
        with pytest.raises(ParameterError):
            run_sweep(scale_grid([1], 1), workers=0)


class TestCli:
    def test_perf_sweep_table(self, capsys):
        assert main([
            "perf-sweep", "--streams", "2", "--blocks", "10",
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "perf sweep" in out
        assert "blocks/s" in out

    def test_perf_sweep_json(self, capsys):
        assert main([
            "perf-sweep", "--streams", "2", "3", "--blocks", "8",
            "--workers", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parallel"] is False
        assert len(payload["results"]) == 2
        assert payload["results"][0]["blocks_delivered"] == 2 * 8
