"""Behavioral equivalence: the fast paths change nothing observable.

A ``ReferenceStreamState`` recomputes consumption with the O(n) rescan on
every query — the pre-optimization semantics, kept alive here as the
oracle.  Whole service runs through the cursor implementation must
produce byte-identical :meth:`ContinuityMetrics.summary` lines, identical
delivery schedules, and byte-identical observability snapshots.
"""

from typing import Tuple

import pytest

import repro.service.session as session_module
from repro.disk.factory import build_drive
from repro.obs.scenarios import run_fault_scenario, run_steady_scenario
from repro.perf.scenarios import ScaleScenario, build_streams
from repro.service.rounds import (
    RoundRobinService,
    StreamState,
    consumed_prefix,
)

pytestmark = pytest.mark.perf


class ReferenceStreamState(StreamState):
    """Pre-cursor semantics: full rescan per consumption query."""

    def _consume_state(self, now: float) -> Tuple[int, float]:
        if self.clock_start is None:
            return 0, 0.0
        return consumed_prefix(self.deliveries, self.clock_start, now)


def _run(scenario: ScaleScenario, stream_cls):
    drive = build_drive()
    initial, admissions = build_streams(scenario, drive)

    def convert(stream):
        return stream_cls(
            request_id=stream.request_id,
            fetches=stream.fetches,
            buffer_capacity=stream.buffer_capacity,
        )

    initial = [convert(s) for s in initial]
    admissions = [
        type(a)(round_number=a.round_number, stream=convert(a.stream))
        for a in admissions
    ]
    service = RoundRobinService(drive, lambda _r, _n: scenario.k)
    metrics = service.run(initial, admissions)
    streams = initial + [a.stream for a in admissions]
    return metrics, streams, service.rounds_run


SCENARIOS = [
    ScaleScenario(
        name="uniform", streams=6, blocks_per_stream=50, k=4,
        buffer_capacity=6, seed=11,
    ),
    ScaleScenario(
        name="staggered", streams=6, blocks_per_stream=40, k=3,
        buffer_capacity=5, seed=4, arrivals="staggered",
    ),
    ScaleScenario(
        name="tight-buffers", streams=4, blocks_per_stream=60, k=5,
        buffer_capacity=2, seed=9,
    ),
]


class TestServiceEquivalence:
    @pytest.mark.parametrize(
        "scenario", SCENARIOS, ids=[s.name for s in SCENARIOS]
    )
    def test_summaries_byte_identical(self, scenario):
        fast_metrics, fast_streams, fast_rounds = _run(
            scenario, StreamState
        )
        ref_metrics, ref_streams, ref_rounds = _run(
            scenario, ReferenceStreamState
        )
        assert fast_rounds == ref_rounds
        assert sorted(fast_metrics) == sorted(ref_metrics)
        for rid in fast_metrics:
            assert fast_metrics[rid].summary() == (
                ref_metrics[rid].summary()
            )
        for fast, ref in zip(fast_streams, ref_streams):
            assert fast.deliveries == ref.deliveries
            assert fast.clock_start == ref.clock_start
            assert fast.skipped_indices == ref.skipped_indices


class TestObservedEquivalence:
    def test_steady_snapshot_unchanged_by_cursor(self, monkeypatch):
        fast = run_steady_scenario(seconds=2.0).snapshot()
        monkeypatch.setattr(
            session_module, "StreamState", ReferenceStreamState
        )
        reference = run_steady_scenario(seconds=2.0).snapshot()
        assert fast == reference

    def test_fault_snapshot_unchanged_by_cursor(self, monkeypatch):
        fast = run_fault_scenario(seconds=2.0).snapshot()
        monkeypatch.setattr(
            session_module, "StreamState", ReferenceStreamState
        )
        reference = run_fault_scenario(seconds=2.0).snapshot()
        assert fast == reference
