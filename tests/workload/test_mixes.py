"""Unit tests for request mixes."""

import pytest

from repro.errors import ParameterError
from repro.workload import ClientSpec, staggered_mix, uniform_mix


class TestClientSpec:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ClientSpec(name="c", arrival_round=-1, duration=5.0)
        with pytest.raises(ParameterError):
            ClientSpec(name="c", arrival_round=0, duration=0.0)
        with pytest.raises(ParameterError):
            ClientSpec(
                name="c", arrival_round=0, duration=5.0,
                video=False, audio=False,
            )


class TestUniformMix:
    def test_all_present_at_round_zero(self):
        mix = uniform_mix(4, 10.0)
        assert mix.size == 4
        assert len(mix.initial()) == 4
        assert mix.later() == []

    def test_rejects_zero_count(self):
        with pytest.raises(ParameterError):
            uniform_mix(0, 10.0)


class TestStaggeredMix:
    def test_arrivals_spaced(self):
        mix = staggered_mix(3, 10.0, rounds_between=5)
        rounds = [c.arrival_round for c in mix.clients]
        assert rounds == [0, 5, 10]
        assert len(mix.initial()) == 1
        assert [c.arrival_round for c in mix.later()] == [5, 10]

    def test_rejects_bad_spacing(self):
        with pytest.raises(ParameterError):
            staggered_mix(3, 10.0, rounds_between=0)
