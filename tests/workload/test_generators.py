"""Unit tests for workload generators."""

import random

import pytest

from repro.config import TESTBED_1991
from repro.errors import ParameterError
from repro.workload import (
    make_recording,
    make_recordings,
    random_edit_script,
)


class TestMakeRecording:
    def test_both_media(self, rng):
        recording = make_recording(
            TESTBED_1991, "clip", 5.0, rng, video=True, audio=True
        )
        assert recording.has_video and recording.has_audio
        assert len(recording.frames) == 150
        assert recording.chunks[-1].end_sample == 40000

    def test_video_only(self, rng):
        recording = make_recording(
            TESTBED_1991, "clip", 5.0, rng, video=True, audio=False
        )
        assert recording.has_video and not recording.has_audio

    def test_tokens_carry_source_name(self, rng):
        recording = make_recording(TESTBED_1991, "intro", 1.0, rng)
        assert recording.frames[0].token.startswith("intro:")

    def test_no_media_rejected(self, rng):
        with pytest.raises(ParameterError):
            make_recording(
                TESTBED_1991, "clip", 5.0, rng, video=False, audio=False
            )

    def test_bad_duration_rejected(self, rng):
        with pytest.raises(ParameterError):
            make_recording(TESTBED_1991, "clip", 0.0, rng)


class TestMakeRecordings:
    def test_count_and_names(self):
        clips = make_recordings(TESTBED_1991, 3, 2.0, seed=5)
        assert [c.name for c in clips] == ["clip0", "clip1", "clip2"]

    def test_deterministic(self):
        first = make_recordings(TESTBED_1991, 2, 2.0, seed=5, audio=True)
        second = make_recordings(TESTBED_1991, 2, 2.0, seed=5, audio=True)
        assert first == second

    def test_rejects_zero_count(self):
        with pytest.raises(ParameterError):
            make_recordings(TESTBED_1991, 0, 2.0, seed=5)


class TestEditScripts:
    def test_alternating_operations(self):
        script = random_edit_script(
            30.0, 10.0, 6, random.Random(4)
        )
        kinds = [step[0] for step in script.steps]
        assert kinds == ["insert", "delete"] * 3

    def test_positions_stay_legal(self):
        rng = random.Random(11)
        script = random_edit_script(30.0, 10.0, 20, rng)
        current = 30.0
        for operation, args in script.steps:
            if operation == "insert":
                position, start, length = args
                assert 0 <= position <= current
                assert 0 <= start
                assert length > 0
                current += length
            else:
                start, length = args
                assert 0 <= start
                assert start + length <= current + 1e-6
                current -= length
        assert current > 0

    def test_deterministic(self):
        a = random_edit_script(30.0, 10.0, 8, random.Random(2))
        b = random_edit_script(30.0, 10.0, 8, random.Random(2))
        assert a == b

    def test_rejects_zero_operations(self):
        with pytest.raises(ParameterError):
            random_edit_script(30.0, 10.0, 0, random.Random(1))
