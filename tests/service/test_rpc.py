"""Unit tests for the MRS<->MSM RPC boundary."""

import pytest

from repro.errors import ParameterError
from repro.media.frames import frames_for_duration
from repro.service.rpc import RpcChannel, stub_for


class Calculator:
    """A trivial target service for channel tests."""

    def add(self, a, b):
        return a + b

    def describe(self, items):
        return {"count": len(items)}

    def _secret(self):
        return 42

    value = 7


class TestRpcChannel:
    def test_invoke_and_log(self):
        channel = RpcChannel("test")
        target = Calculator()
        assert channel.invoke(target, "add", 1, 2) == 3
        assert channel.call_count == 1
        call = channel.calls[0]
        assert call.method == "add"
        assert call.argument_bytes > 0
        assert call.result_bytes > 0

    def test_private_methods_refused(self):
        channel = RpcChannel("test")
        with pytest.raises(ParameterError):
            channel.invoke(Calculator(), "_secret")

    def test_non_callable_refused(self):
        channel = RpcChannel("test")
        with pytest.raises(ParameterError):
            channel.invoke(Calculator(), "value")

    def test_histogram_and_bytes(self):
        channel = RpcChannel("test")
        target = Calculator()
        channel.invoke(target, "add", 1, 2)
        channel.invoke(target, "add", 3, 4)
        channel.invoke(target, "describe", ["a", "b"])
        assert channel.calls_by_method() == {"add": 2, "describe": 1}
        assert channel.bytes_transferred > 0


class TestStub:
    def test_stub_routes_methods(self):
        channel = RpcChannel("test")
        stub = stub_for(Calculator(), channel)
        assert stub.add(2, 3) == 5
        assert channel.call_count == 1

    def test_stub_passes_plain_attributes(self):
        channel = RpcChannel("test")
        stub = stub_for(Calculator(), channel)
        assert stub.value == 7
        assert channel.call_count == 0


class TestMarshalledSizes:
    def test_enum_marshals_as_its_value(self):
        from repro.api import Media, RejectReason
        from repro.service.rpc import estimate_bytes

        assert estimate_bytes(Media.VIDEO) == len(
            Media.VIDEO.value.encode("utf-8")
        )
        assert estimate_bytes(RejectReason.CAPACITY) == len(
            RejectReason.CAPACITY.value.encode("utf-8")
        )

    def test_dataclass_is_envelope_plus_fields(self):
        import dataclasses

        from repro.api import OpenSessionRequest
        from repro.service.rpc import estimate_bytes

        request = OpenSessionRequest(
            client_id="alice", rope_id="R0001", arrival=1.5
        )
        expected = 16 + sum(
            estimate_bytes(getattr(request, f.name))
            for f in dataclasses.fields(request)
        )
        assert estimate_bytes(request) == expected
        # The nested enum field is sized by value, not attribute-guessed.
        assert estimate_bytes(request) > 16

    def test_api_messages_size_nonzero_through_a_channel(self):
        from repro.api import OpenSessionResponse

        channel = RpcChannel("test")

        class Echo:
            def reply(self, message):
                return message

        from repro.service.rpc import estimate_bytes

        response = OpenSessionResponse(session_id="C0001", accepted=True)
        stub = stub_for(Echo(), channel)
        assert stub.reply(response) is response
        call = channel.calls[0]
        assert call.result_bytes == estimate_bytes(response) > 16
        # Arguments carry the args-list + kwargs-dict envelopes on top.
        assert call.argument_bytes == call.result_bytes + 16


class TestSizingCompleteness:
    @staticmethod
    def _example(message_type):
        """A minimal instance of one repro.api message dataclass."""
        from repro.api import (
            HandoffRecord,
            NodeServeResult,
            NodeStatus,
            OpenSessionRequest,
            OpenSessionResponse,
            PauseRequest,
            PlayRequest,
            ResumeRequest,
            ServeResult,
            SessionState,
            SessionStatus,
            StopRequest,
        )
        from repro.api import ClusterServeResult

        status = SessionStatus(
            session_id="S0001", client_id="alice", rope_id="T01",
            state=SessionState.COMPLETED,
        )
        examples = {
            OpenSessionRequest: OpenSessionRequest(
                client_id="alice", rope_id="T01"
            ),
            OpenSessionResponse: OpenSessionResponse(
                session_id="S0001", accepted=True
            ),
            PlayRequest: PlayRequest(session_id="S0001"),
            PauseRequest: PauseRequest(session_id="S0001"),
            ResumeRequest: ResumeRequest(session_id="S0001"),
            StopRequest: StopRequest(session_id="S0001"),
            SessionStatus: status,
            ServeResult: ServeResult(statuses=(status,)),
            NodeStatus: NodeStatus(node_id="node-00"),
            HandoffRecord: HandoffRecord(
                session_id="S0001", rope_id="T01",
                from_node="node-00", to_node="node-01", at_chunk=1,
            ),
            NodeServeResult: NodeServeResult(node_id="node-00"),
            ClusterServeResult: ClusterServeResult(statuses=(status,)),
        }
        return examples.get(message_type)

    def test_every_api_message_is_sized(self):
        # The completeness gate: every dataclass repro.api exports —
        # cluster-addressed messages included — must size through
        # estimate_bytes as envelope + recursive fields.  A new message
        # type without an example here fails loudly instead of falling
        # into the scalar-attribute guess.
        import dataclasses as dc

        from repro import api
        from repro.service.rpc import estimate_bytes

        message_types = [
            getattr(api, name)
            for name in api.__all__
            if isinstance(getattr(api, name), type)
            and dc.is_dataclass(getattr(api, name))
        ]
        assert message_types, "repro.api exports no message dataclasses?"
        for message_type in message_types:
            example = self._example(message_type)
            assert example is not None, (
                f"{message_type.__name__} has no sizing example; "
                "extend TestSizingCompleteness._example"
            )
            expected = 16 + sum(
                estimate_bytes(getattr(example, f.name))
                for f in dc.fields(example)
            )
            assert estimate_bytes(example) == expected, (
                message_type.__name__
            )
            assert estimate_bytes(example) > 16, message_type.__name__

    def test_cluster_messages_cross_a_channel(self):
        from repro.api import NodeStatus
        from repro.service.rpc import estimate_bytes

        channel = RpcChannel("cluster-test")

        class Echo:
            def reply(self, message):
                return message

        stub = stub_for(Echo(), channel)
        node = NodeStatus(node_id="node-07", sessions=3)
        assert stub.reply(node) is node
        assert channel.calls[0].result_bytes == estimate_bytes(node) > 16


class TestBatchAdmissionLogging:
    def test_media_server_admissions_cross_the_channel(self):
        """Every batch admission and release is logged MRS<->MSM with
        marshalled sizes, like the prototype's RPCs."""
        from repro.api import Media, OpenSessionRequest
        from repro.server.scenarios import (
            _record_strands,
            build_media_server,
        )

        server = build_media_server()
        clients = [f"client-{i}" for i in range(4)]
        rope_id = _record_strands(server.mrs, 1, 1.0, clients, "rpc")[0]
        server.serve([
            OpenSessionRequest(
                client_id=client, rope_id=rope_id, media=Media.VIDEO
            )
            for client in clients
        ])
        methods = server.channel.calls_by_method()
        # One batch of four -> exactly one physical admit + release.
        assert methods == {"admit": 1, "release": 1}
        for call in server.channel.calls:
            assert call.argument_bytes > 0


class TestLayerBoundary:
    def test_applications_reach_mrs_through_stub(self, mrs, profile):
        """The §5.2 pattern: a rope stub library in front of the MRS."""
        channel = RpcChannel("app<->mrs")
        stub = stub_for(mrs, channel)
        frames = frames_for_duration(profile.video, 2.0, source="rpc")
        request_id, rope_id = stub.record("u", frames=frames)
        stub.stop(request_id)
        rope = stub.get_rope(rope_id)
        assert rope.duration == pytest.approx(2.0)
        methods = channel.calls_by_method()
        assert methods["record"] == 1
        assert methods["stop"] == 1
        # Rope metadata is tiny compared to the media itself (~2 MB):
        # only synchronization information crosses the boundary.
        media_bits = sum(f.size_bits for f in frames)
        assert channel.bytes_transferred * 8 < media_bits / 10
