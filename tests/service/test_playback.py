"""Unit tests for the single-request architecture simulators (E1 engine)."""

import pytest

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.symbols import video_block_model
from repro.disk import build_array, build_drive
from repro.media.devices import DisplayDevice
from repro.rope.server import BlockFetch
from repro.service import (
    simulate_concurrent,
    simulate_pipelined,
    simulate_sequential,
)


@pytest.fixture
def block():
    # granularity 1: the testbed drive can actually violate these bounds.
    return video_block_model(TESTBED_1991.video, 1)


def make_fetches(drive, block, gap, count=80):
    return fetches_with_gap(
        drive, count, gap, block.block_bits, block.playback_duration
    )


class TestPipelined:
    def test_continuous_inside_bound(self, block):
        drive = build_drive()
        bound = continuity.max_scattering(
            Architecture.PIPELINED, block, drive.parameters(),
            TESTBED_1991.video_device,
        )
        fetches = make_fetches(drive, block, bound * 0.9)
        metrics, ready = simulate_pipelined(fetches, drive)
        assert metrics.continuous
        assert len(ready) == len(fetches)
        assert ready == sorted(ready)

    def test_misses_beyond_bound(self, block):
        drive = build_drive()
        widest = (
            drive.seek_model.seek_time(drive.geometry.cylinders - 1)
            + drive.rotation.average_latency
        )
        fetches = make_fetches(drive, block, widest)
        metrics, _ = simulate_pipelined(fetches, drive)
        assert metrics.misses > 0
        assert metrics.max_lateness > 0

    def test_read_ahead_absorbs_jitter(self, block):
        drive = build_drive()
        widest = (
            drive.seek_model.seek_time(drive.geometry.cylinders - 1)
            + drive.rotation.average_latency
        )
        fetches = make_fetches(drive, block, widest, count=40)
        drive.park(0)
        no_ahead, _ = simulate_pipelined(fetches, drive)
        drive2 = build_drive()
        fetches2 = make_fetches(drive2, block, widest, count=40)
        drive2.park(0)
        with_ahead, _ = simulate_pipelined(fetches2, drive2, read_ahead=39)
        assert with_ahead.misses < no_ahead.misses
        assert with_ahead.startup_latency > no_ahead.startup_latency

    def test_silence_fetches_cost_nothing(self, block):
        drive = build_drive()
        fetches = [
            BlockFetch(slot=None, bits=0.0, duration=block.playback_duration)
        ] * 10
        metrics, ready = simulate_pipelined(fetches, drive)
        assert metrics.continuous
        assert all(t == 0.0 for t in ready)


class TestSequential:
    def test_needs_more_slack_than_pipelined(self, block):
        """At a gap between the two bounds, sequential misses, pipelined not."""
        device = DisplayDevice(TESTBED_1991.video_device)
        reference = build_drive()
        params = reference.parameters()
        seq_bound = continuity.max_scattering(
            Architecture.SEQUENTIAL, block, params,
            TESTBED_1991.video_device,
        )
        pipe_bound = continuity.max_scattering(
            Architecture.PIPELINED, block, params,
            TESTBED_1991.video_device,
        )
        between = (seq_bound + pipe_bound) / 2
        drive_a = build_drive()
        seq_metrics, _ = simulate_sequential(
            make_fetches(drive_a, block, between, count=100), drive_a, device
        )
        drive_b = build_drive()
        pipe_metrics, _ = simulate_pipelined(
            make_fetches(drive_b, block, between, count=100), drive_b
        )
        assert seq_metrics.misses > 0
        assert pipe_metrics.misses == 0

    def test_continuous_inside_own_bound(self, block):
        drive = build_drive()
        device = DisplayDevice(TESTBED_1991.video_device)
        bound = continuity.max_scattering(
            Architecture.SEQUENTIAL, block, drive.parameters(),
            TESTBED_1991.video_device,
        )
        metrics, _ = simulate_sequential(
            make_fetches(drive, block, bound * 0.9), drive, device
        )
        assert metrics.continuous


class TestConcurrent:
    def test_parallelism_rescues_infeasible_gap(self, block):
        """A gap that sinks a single head is fine with p heads."""
        single = build_drive()
        widest = (
            single.seek_model.seek_time(single.geometry.cylinders - 1)
            + single.rotation.average_latency
        )
        fetches = make_fetches(single, block, widest)
        single_metrics, _ = simulate_pipelined(fetches, single)
        assert single_metrics.misses > 0

        array = build_array(heads=4)
        fetches4 = make_fetches(array.member(0), block, widest)
        concurrent_metrics, _ = simulate_concurrent(fetches4, array)
        assert concurrent_metrics.misses == 0

    def test_ready_times_grouped_by_batch(self, block):
        array = build_array(heads=2)
        fetches = make_fetches(array.member(0), block, 0.02, count=6)
        _, ready = simulate_concurrent(fetches, array)
        assert ready[0] == ready[1]
        assert ready[2] == ready[3]
        assert ready[0] < ready[2] < ready[4]

    def test_startup_latency_is_first_batch(self, block):
        array = build_array(heads=3)
        fetches = make_fetches(array.member(0), block, 0.02, count=9)
        metrics, ready = simulate_concurrent(fetches, array)
        assert metrics.startup_latency == pytest.approx(ready[2])


class TestForcedSynchronization:
    def test_forced_sync_zeroes_display_jitter(self, block):
        """§3.2: with enough read-ahead, forcing displays to the clock's
        deadlines removes all display-time jitter that arrival jitter
        would otherwise cause."""
        import random

        from repro.disk import TESTBED_DRIVE
        from repro.disk import build_drive as build
        from repro.media.clock import MediaClock, forced_display_times

        rng = random.Random(5)
        drive = build(TESTBED_DRIVE, randomized_rotation=True, rng=rng)
        bound = continuity.max_scattering(
            Architecture.PIPELINED, block, drive.parameters(),
            TESTBED_1991.video_device,
        )
        fetches = make_fetches(drive, block, bound * 0.8, count=60)
        metrics, ready = simulate_pipelined(fetches, drive, read_ahead=4)
        assert metrics.continuous
        clock = MediaClock(
            start=ready[4], period=block.playback_duration
        )
        display = forced_display_times(ready, clock)
        # Every block displays exactly on its deadline: zero jitter.
        for number, time in enumerate(display):
            assert time == pytest.approx(clock.deadline(number))
        # Without forcing, arrival spacing varies (randomized rotation).
        gaps = {round(b - a, 6) for a, b in zip(ready, ready[1:])}
        assert len(gaps) > 1
