"""Unit tests for §6.2 seek-optimized request ordering."""

import pytest

from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import build_drive
from repro.errors import ParameterError
from repro.rope.server import BlockFetch
from repro.service.rounds import RoundRobinService, StreamState
from repro.service.scan_order import (
    ScanOrderService,
    measured_capacity,
    probe_round_times,
)


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 1)


def regional_streams(drive, block, n=3, blocks=60, k=8):
    """n streams in n disk regions, adversarial arrival order."""
    regions = [0, n - 1] + list(range(1, n - 1))
    streams = []
    for i, region in enumerate(regions[:n]):
        base = region * drive.slots // n
        fetches = [
            BlockFetch(
                slot=min(base + j, drive.slots - 1),
                bits=block.block_bits,
                duration=block.playback_duration,
            )
            for j in range(blocks)
        ]
        streams.append(
            StreamState(
                request_id=f"s{i}", fetches=fetches, buffer_capacity=2 * k
            )
        )
    return streams


class TestScanOrdering:
    def test_same_deliveries_as_round_robin(self, block):
        """SCAN changes order, never correctness: all blocks delivered."""
        drive = build_drive()
        streams = regional_streams(drive, block)
        service = ScanOrderService(drive, lambda r, n: 8)
        metrics = service.run(streams)
        assert all(m.blocks_delivered == 60 for m in metrics.values())

    def test_scan_reduces_seek_time(self, block):
        drive_rr = build_drive()
        rr = RoundRobinService(drive_rr, lambda r, n: 8)
        rr.run(regional_streams(drive_rr, block))
        drive_scan = build_drive()
        scan = ScanOrderService(drive_scan, lambda r, n: 8)
        scan.run(regional_streams(drive_scan, block))
        assert drive_scan.stats.seek_time <= drive_rr.stats.seek_time

    def test_probe_measures_rounds(self, block):
        drive = build_drive()
        streams = regional_streams(drive, block, blocks=32, k=8)
        probe = probe_round_times(
            ScanOrderService(drive, lambda r, n: 8), streams
        )
        assert len(probe.durations) >= 4
        assert 0 < probe.mean <= probe.worst

    def test_probe_restores_service(self, block):
        drive = build_drive()
        service = ScanOrderService(drive, lambda r, n: 8)
        original = service._run_round
        probe_round_times(service, regional_streams(drive, block, blocks=8))
        assert service._run_round == original


class TestMeasuredCapacity:
    def test_form_matches_eq17(self):
        # beta_hat = 0.6 / (3*10) = 0.02; ceil(0.1/0.02) - 1 = 4.
        assert measured_capacity(0.1, 10, 0.6, 3) == 4

    def test_floor_at_one(self):
        assert measured_capacity(0.01, 1, 10.0, 1) == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            measured_capacity(0.1, 0, 0.6, 3)
        with pytest.raises(ParameterError):
            measured_capacity(0.1, 1, 0.0, 3)
