"""Unit tests for the recording-side continuity simulator."""

import pytest

from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import (
    ConstrainedScatterAllocator,
    FreeMap,
    ScatterBounds,
    StrandPlacer,
    build_drive,
)
from repro.errors import ParameterError
from repro.service.recording import simulate_recording


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 4)


def constrained_placement(drive, count=60):
    freemap = FreeMap(drive.slots)
    bounds = ScatterBounds(0.0, drive.rotation.average_latency + 0.006)
    placer = StrandPlacer(
        drive, ConstrainedScatterAllocator(drive, freemap, bounds)
    )
    return placer.place(count)


class TestRecordingContinuity:
    def test_constrained_placement_records_cleanly(self, block):
        drive = build_drive()
        placement = constrained_placement(drive)
        drive.park(0)
        metrics, completions = simulate_recording(
            placement.slots, drive, block.playback_duration,
            buffer_capacity=2,
        )
        assert metrics.continuous
        assert len(completions) == 60
        assert completions == sorted(completions)

    def test_writes_start_after_capture(self, block):
        drive = build_drive()
        placement = constrained_placement(drive, count=10)
        drive.park(0)
        _, completions = simulate_recording(
            placement.slots, drive, block.playback_duration
        )
        # Block j is only available at (j+1) periods; write ends later.
        for j, completion in enumerate(completions):
            assert completion > (j + 1) * block.playback_duration

    def test_overload_overflows_staging_buffer(self, block):
        """Capture faster than the disk can retire => misses."""
        drive = build_drive()
        placement = constrained_placement(drive, count=40)
        drive.park(0)
        # A block period far below the write time is unsustainable.
        hopeless_period = 0.005
        metrics, _ = simulate_recording(
            placement.slots, drive, hopeless_period, buffer_capacity=2
        )
        assert metrics.misses > 0
        assert metrics.buffer_high_water > 2

    def test_bigger_staging_buffer_tolerates_jitter(self, block):
        drive = build_drive()
        # Stripe across the whole disk: gaps near worst case.
        slots = list(range(0, drive.slots, drive.slots // 40))[:40]
        period = block.playback_duration / 4  # tight, near the write time
        drive.park(0)
        small, _ = simulate_recording(
            slots, drive, period, buffer_capacity=1
        )
        drive2 = build_drive()
        drive2.park(0)
        large, _ = simulate_recording(
            slots, drive2, period, buffer_capacity=20
        )
        assert large.misses <= small.misses

    def test_validation(self, block):
        drive = build_drive()
        with pytest.raises(ParameterError):
            simulate_recording([0], drive, 0.0)
        with pytest.raises(ParameterError):
            simulate_recording([0], drive, 0.1, buffer_capacity=0)
