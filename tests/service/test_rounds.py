"""Unit tests for the §3.4 round-robin service loop."""

import pytest

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core import admission as adm
from repro.core.symbols import video_block_model
from repro.disk import build_drive
from repro.errors import ParameterError
from repro.service.rounds import Admission, RoundRobinService, StreamState
from repro.sim.trace import Tracer


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 4)


def make_stream(drive, block, request_id, blocks=60, capacity=200):
    fetches = fetches_with_gap(
        drive, blocks, drive.parameters().seek_avg,
        block.block_bits, block.playback_duration,
    )
    return StreamState(
        request_id=request_id, fetches=fetches, buffer_capacity=capacity
    )


class TestSingleStream:
    def test_all_blocks_delivered(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0")
        service = RoundRobinService(drive, lambda r, n: 4)
        metrics = service.run([stream])
        assert metrics["r0"].blocks_delivered == 60
        assert stream.finished

    def test_continuous_at_sane_k(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0")
        service = RoundRobinService(drive, lambda r, n: 4)
        metrics = service.run([stream])
        assert metrics["r0"].continuous

    def test_playback_starts_after_first_k(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0")
        service = RoundRobinService(drive, lambda r, n: 8)
        service.run([stream])
        assert stream.clock_start is not None
        assert stream.metrics.startup_latency == pytest.approx(
            stream.clock_start
        )


class TestMultipleStreams:
    def test_admitted_set_is_continuous_at_transition_k(self, block):
        drive = build_drive()
        params = drive.parameters()
        descriptor = adm.RequestDescriptor(
            block=block, scattering_avg=params.seek_avg
        )
        n = 2
        service_params = adm.service_parameters([descriptor] * n, params)
        k = adm.k_transition(service_params)
        streams = [
            make_stream(drive, block, f"r{i}", capacity=2 * k)
            for i in range(n)
        ]
        service = RoundRobinService(drive, lambda r, m: k)
        metrics = service.run(streams)
        assert all(m.continuous for m in metrics.values())

    def test_starvation_k_causes_misses(self, block):
        """k = 1 with several streams violates Eq. 11 on this disk."""
        drive = build_drive()
        streams = [
            make_stream(drive, block, f"r{i}", blocks=40) for i in range(4)
        ]
        service = RoundRobinService(drive, lambda r, n: 1)
        metrics = service.run(streams)
        assert sum(m.misses for m in metrics.values()) > 0

    def test_mid_run_admission(self, block):
        drive = build_drive()
        first = make_stream(drive, block, "first")
        late = make_stream(drive, block, "late", blocks=20)
        service = RoundRobinService(drive, lambda r, n: 5)
        metrics = service.run(
            [first], [Admission(round_number=3, stream=late)]
        )
        assert metrics["late"].blocks_delivered == 20
        assert metrics["first"].blocks_delivered == 60

    def test_tracer_records_admissions(self, block):
        drive = build_drive()
        tracer = Tracer()
        first = make_stream(drive, block, "first", blocks=30)
        late = make_stream(drive, block, "late", blocks=10)
        service = RoundRobinService(drive, lambda r, n: 5, tracer=tracer)
        service.run([first], [Admission(round_number=1, stream=late)])
        assert tracer.filter(tag="admit", subject="late")
        assert tracer.filter(tag="playback-start")


class TestBufferRegulation:
    def test_capacity_never_exceeded(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0", blocks=60, capacity=4)
        service = RoundRobinService(drive, lambda r, n: 10)
        service.run([stream])
        assert stream.metrics.buffer_high_water <= 4
        assert stream.metrics.blocks_delivered == 60

    def test_tight_buffer_slows_but_completes(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0", blocks=30, capacity=2)
        service = RoundRobinService(drive, lambda r, n: 8)
        metrics = service.run([stream])
        assert metrics["r0"].blocks_delivered == 30
        assert service.rounds_run > 3  # regulation forced many rounds


class TestValidation:
    def test_bad_k_schedule_rejected(self, block):
        drive = build_drive()
        stream = make_stream(drive, block, "r0")
        service = RoundRobinService(drive, lambda r, n: 0)
        with pytest.raises(ParameterError):
            service.run([stream])

    def test_bad_buffer_capacity_rejected(self, block):
        drive = build_drive()
        with pytest.raises(ParameterError):
            StreamState(request_id="x", fetches=[], buffer_capacity=0)

    def test_no_streams_no_rounds(self, block):
        drive = build_drive()
        service = RoundRobinService(drive, lambda r, n: 1)
        assert service.run([]) == {}
        assert service.rounds_run == 0
