"""Unit tests for the unified media+text service."""

import pytest

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import build_drive
from repro.service.besteffort import TextRequest, UnifiedService
from repro.service.rounds import StreamState


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 4)


def media_streams(drive, block, n=1, blocks=60, k=4):
    streams = []
    for i in range(n):
        fetches = fetches_with_gap(
            drive, blocks, drive.parameters().seek_avg,
            block.block_bits, block.playback_duration,
        )
        streams.append(
            StreamState(
                request_id=f"m{i}", fetches=fetches, buffer_capacity=2 * k
            )
        )
    return streams


def text_slots(drive, count, start=None):
    start = drive.slots // 2 if start is None else start
    return list(range(start, start + count))


class TestUnifiedService:
    def test_media_guarantee_unaffected_by_text(self, block):
        drive = build_drive()
        text = TextRequest("t0", text_slots(drive, 40))
        service = UnifiedService(
            drive, lambda r, n: 4, text_requests=[text]
        )
        metrics = service.run(media_streams(drive, block))
        assert all(m.continuous for m in metrics.values())

    def test_text_served_in_slack(self, block):
        drive = build_drive()
        text = TextRequest("t0", text_slots(drive, 30))
        service = UnifiedService(
            drive, lambda r, n: 4, text_requests=[text]
        )
        service.run(media_streams(drive, block))
        assert service.text_blocks_served > 0

    def test_drain_completes_leftovers(self, block):
        drive = build_drive()
        text = TextRequest("t0", text_slots(drive, 500))
        service = UnifiedService(
            drive, lambda r, n: 4, text_requests=[text]
        )
        service.run(media_streams(drive, block))
        service.drain_text(0.0)
        assert text.finished
        assert text.completion_time is not None
        assert service.text_blocks_served == 500

    def test_heavier_media_load_slows_text(self, block):
        def throughput(n_media):
            drive = build_drive()
            text = TextRequest("t0", text_slots(drive, 20, start=100))
            service = UnifiedService(
                drive, lambda r, n: 4, text_requests=[text]
            )
            service.run(media_streams(drive, block, n=n_media))
            return service.text_blocks_served

        light = throughput(1)
        heavy = throughput(3)
        assert heavy <= light

    def test_fifo_order(self, block):
        drive = build_drive()
        first = TextRequest("first", text_slots(drive, 10, start=200))
        second = TextRequest("second", text_slots(drive, 10, start=400))
        service = UnifiedService(
            drive, lambda r, n: 4, text_requests=[first, second]
        )
        service.run(media_streams(drive, block))
        service.drain_text(1e6)
        assert first.completion_time <= second.completion_time

    def test_text_request_state(self):
        request = TextRequest("t", [1, 2, 3])
        assert not request.finished
        assert request.remaining == 3
        request.served = 3
        assert request.finished
        assert request.remaining == 0


class TestPerRequestKBudget:
    def test_text_respects_surviving_streams_own_k(self):
        """Regression: after fast (video) streams finish, the text budget
        must come from the surviving streams' k_override, not the global
        k — otherwise slow-draining audio starves behind text reads."""
        from repro.core import (
            GeneralAdmissionController,
            RequestDescriptor,
        )
        from repro.core.symbols import BlockModel

        drive = build_drive()
        params = drive.parameters()
        video_block = video_block_model(TESTBED_1991.video, 4)
        audio_block = BlockModel(8000.0, 8.0, 4096)
        video = RequestDescriptor(video_block, scattering_avg=params.seek_avg)
        audio = RequestDescriptor(audio_block, scattering_avg=params.seek_avg)
        controller = GeneralAdmissionController(params)
        mix = [video, video, audio, audio, audio, audio]
        ids = [controller.admit(d).request_id for d in mix]
        streams = []
        for i, (descriptor, request_id) in enumerate(zip(mix, ids)):
            k = controller.k_for(request_id)
            block = descriptor.block
            fetches = fetches_with_gap(
                drive, 60, params.seek_avg, block.block_bits,
                block.playback_duration,
            )
            streams.append(
                StreamState(
                    request_id=f"s{i}", fetches=fetches,
                    buffer_capacity=2 * k, k_override=k,
                )
            )
        text = TextRequest("t", list(range(5000, 5300)))
        service = UnifiedService(
            drive,
            lambda r, n: max(controller.k_values().values()),
            text_requests=[text],
        )
        metrics = service.run(streams)
        assert all(m.continuous for m in metrics.values())
        assert service.text_blocks_served > 0
