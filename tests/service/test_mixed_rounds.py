"""Unit tests for concurrent storage + retrieval service."""

import pytest

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import (
    ConstrainedScatterAllocator,
    FreeMap,
    ScatterBounds,
    StrandPlacer,
    build_drive,
)
from repro.errors import ParameterError
from repro.service.mixed_rounds import MixedRoundService, RecordStream
from repro.service.rounds import StreamState


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 4)


def play_stream(drive, block, request_id="play", blocks=40, k=4):
    fetches = fetches_with_gap(
        drive, blocks, drive.parameters().seek_avg,
        block.block_bits, block.playback_duration,
    )
    return StreamState(
        request_id=request_id, fetches=fetches, buffer_capacity=2 * k
    )


def record_stream(drive, block, request_id="rec", blocks=40, capacity=4):
    freemap = FreeMap(drive.slots)
    bounds = ScatterBounds(0.0, drive.rotation.average_latency + 0.01)
    placement = StrandPlacer(
        drive, ConstrainedScatterAllocator(drive, freemap, bounds)
    ).place(blocks)
    drive.park(0)
    return RecordStream(
        request_id=request_id,
        slots=placement.slots,
        block_period=block.playback_duration,
        staging_capacity=capacity,
    )


class TestRecordStream:
    def test_capture_schedule(self, block):
        record = RecordStream(
            request_id="r", slots=[1, 2, 3],
            block_period=0.1, staging_capacity=2,
        )
        assert record.captured_at(0.05) == 0
        assert record.captured_at(0.15) == 1
        assert record.captured_at(10.0) == 3  # clamped to the plan
        assert record.deadline_of(0) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ParameterError):
            RecordStream("r", [1], block_period=0.0)
        with pytest.raises(ParameterError):
            RecordStream("r", [1], block_period=0.1, staging_capacity=0)


class TestMixedService:
    def test_recording_alone_is_continuous(self, block):
        drive = build_drive()
        record = record_stream(drive, block)
        service = MixedRoundService(
            drive, lambda r, n: 4, record_streams=[record]
        )
        metrics = service.run([])
        assert record.finished
        assert metrics["rec"].continuous
        assert metrics["rec"].blocks_delivered == 40

    def test_record_plus_play_both_continuous(self, block):
        """§3's symmetric claim: storage and retrieval share the loop."""
        drive = build_drive()
        record = record_stream(drive, block)
        play = play_stream(drive, block)
        service = MixedRoundService(
            drive, lambda r, n: 4, record_streams=[record]
        )
        metrics = service.run([play])
        assert metrics["play"].continuous
        assert metrics["rec"].continuous

    def test_two_recorders_and_player(self, block):
        drive = build_drive()
        recorders = [
            record_stream(drive, block, request_id=f"rec{i}", blocks=30)
            for i in range(2)
        ]
        play = play_stream(drive, block, blocks=30)
        service = MixedRoundService(
            drive, lambda r, n: 4, record_streams=recorders
        )
        metrics = service.run([play])
        assert all(m.continuous for m in metrics.values())
        assert all(r.finished for r in recorders)

    def test_writes_never_precede_capture(self, block):
        drive = build_drive()
        record = record_stream(drive, block, blocks=20)
        service = MixedRoundService(
            drive, lambda r, n: 8, record_streams=[record]
        )
        service.run([])
        # Delivery j completes after block j finished capturing.
        for j, (ready, _deadline, _dur) in enumerate(
            []  # RecordStream keeps metrics, not delivery tuples
        ):
            pass
        samples = record.metrics._lateness_samples
        for j, lateness in enumerate(samples):
            write_end = record.deadline_of(j) + lateness
            captured = (j + 1) * block.playback_duration
            assert write_end > captured

    def test_tiny_staging_buffer_overruns(self, block):
        """A 1-block staging buffer cannot absorb competing play load."""
        drive = build_drive()
        record = record_stream(drive, block, blocks=30, capacity=1)
        plays = [
            play_stream(drive, block, request_id=f"p{i}", blocks=30)
            for i in range(3)
        ]
        service = MixedRoundService(
            drive, lambda r, n: 8, record_streams=[record]
        )
        metrics = service.run(plays)
        assert metrics["rec"].misses > 0
