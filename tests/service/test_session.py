"""Unit tests for end-to-end playback sessions."""

import pytest

from repro.errors import ParameterError
from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import Media
from repro.service import PlaybackSession, staged_k_schedule


@pytest.fixture
def rope(mrs, profile):
    frames = frames_for_duration(profile.video, 10.0, source="cam")
    request_id, rope_id = mrs.record("u", frames=frames)
    mrs.stop(request_id)
    return rope_id


class TestStagedKSchedule:
    def test_constant_without_steps(self):
        schedule = staged_k_schedule(3, [])
        assert schedule(0, 1) == 3
        assert schedule(100, 5) == 3

    def test_steps_apply_in_order(self):
        schedule = staged_k_schedule(2, [(5, 3), (6, 4)])
        assert schedule(4, 1) == 2
        assert schedule(5, 1) == 3
        assert schedule(6, 1) == 4
        assert schedule(99, 1) == 4

    def test_rejects_bad_initial(self):
        with pytest.raises(ParameterError):
            staged_k_schedule(0, [])


class TestPlaybackSession:
    def test_single_request_continuous(self, mrs, rope):
        request_id = mrs.play("u", rope, media=Media.VIDEO)
        session = PlaybackSession(mrs)
        result = session.run([request_id], k=4)
        assert result.all_continuous
        assert result.total_misses == 0
        assert result.metrics[request_id].blocks_delivered > 0

    def test_multiple_requests_at_controller_k(self, mrs, rope):
        ids = [mrs.play("u", rope, media=Media.VIDEO) for _ in range(2)]
        session = PlaybackSession(mrs)
        result = session.run(ids)  # uses the controller's current k
        assert result.k_used == mrs.msm.admission.current_k
        assert result.all_continuous

    def test_mid_session_admission(self, mrs, rope):
        first = mrs.play("u", rope, media=Media.VIDEO)
        second = mrs.play("u", rope, media=Media.VIDEO)
        session = PlaybackSession(mrs)
        result = session.run([first], admissions=[(2, second)])
        assert result.metrics[second].blocks_delivered > 0

    def test_av_interleaving_orders_by_playback_position(
        self, mrs, profile, rng
    ):
        frames = frames_for_duration(profile.video, 10.0, source="av")
        chunks = generate_talk_spurts(profile.audio, 10.0, 0.2, rng)
        request_id, rope_id = mrs.record("u", frames=frames, chunks=chunks)
        mrs.stop(request_id)
        play_id = mrs.play("u", rope_id)
        session = PlaybackSession(mrs)
        plan = mrs.playback_plan(play_id)
        merged = session._interleave(plan)
        assert len(merged) == len(plan.video) + len(plan.audio)
        # Both media make steady progress: no medium is starved to the end.
        video_positions = [
            i for i, f in enumerate(merged) if f in plan.video
        ]
        audio_positions = [
            i for i, f in enumerate(merged) if f in plan.audio
        ]
        assert min(audio_positions) < max(video_positions)

    def test_session_result_reports_misses(self, mrs, rope):
        """At k=1 with several concurrent streams, misses surface."""
        ids = [mrs.play("u", rope, media=Media.VIDEO) for _ in range(3)]
        session = PlaybackSession(mrs)
        result = session.run(ids, k=1)
        assert result.total_misses == sum(
            m.misses for m in result.metrics.values()
        )
