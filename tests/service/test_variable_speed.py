"""Unit tests for §3.3.2 variable-speed playback."""

import pytest

from repro.analysis.experiments import fetches_with_gap
from repro.config import TESTBED_1991
from repro.core.symbols import video_block_model
from repro.disk import build_drive
from repro.errors import ParameterError
from repro.rope.server import BlockFetch
from repro.service.variable_speed import (
    simulate_variable_speed,
    transform_plan,
)


@pytest.fixture
def block():
    return video_block_model(TESTBED_1991.video, 4)


def plan_for(drive, block, count=60):
    return fetches_with_gap(
        drive, count, drive.parameters().seek_avg,
        block.block_bits, block.playback_duration,
    )


class TestTransformPlan:
    def test_fast_forward_shrinks_durations(self, block):
        fetches = [BlockFetch(slot=1, bits=10.0, duration=0.1)] * 4
        fast = transform_plan(fetches, 2.0)
        assert len(fast) == 4
        assert all(f.duration == pytest.approx(0.05) for f in fast)

    def test_skipping_drops_blocks_keeps_wall_clock(self, block):
        fetches = [
            BlockFetch(slot=i, bits=10.0, duration=0.1) for i in range(8)
        ]
        fast = transform_plan(fetches, 2.0, skipping=True)
        assert len(fast) == 4
        # 8 blocks of media shown in 8*0.1/2 = 0.4 s of wall clock.
        assert sum(f.duration for f in fast) == pytest.approx(0.4)
        assert [f.slot for f in fast] == [0, 2, 4, 6]

    def test_slow_motion_stretches(self, block):
        fetches = [BlockFetch(slot=1, bits=10.0, duration=0.1)]
        slow = transform_plan(fetches, 0.5)
        assert slow[0].duration == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            transform_plan([], 0.0)
        with pytest.raises(ParameterError):
            transform_plan([], 0.5, skipping=True)


class TestSimulation:
    def test_normal_speed_continuous(self, block):
        drive = build_drive()
        result = simulate_variable_speed(
            plan_for(drive, block), drive, speed=1.0, buffer_capacity=8
        )
        assert result.continuous
        assert result.metrics.blocks_delivered == 60

    def test_skipping_halves_fetches(self, block):
        drive = build_drive()
        result = simulate_variable_speed(
            plan_for(drive, block), drive, speed=2.0, skipping=True,
            buffer_capacity=8,
        )
        assert result.metrics.blocks_delivered == 30
        assert result.continuous

    def test_slow_motion_triggers_task_switches(self, block):
        """§3.3.2: over-satisfied continuity fills buffers; the disk
        switches away and the playback still never starves."""
        drive = build_drive()
        result = simulate_variable_speed(
            plan_for(drive, block), drive, speed=0.5, buffer_capacity=6
        )
        assert result.task_switches > 0
        assert result.switch_idle_time > 0
        assert result.buffer_high_water <= 6
        assert result.continuous

    def test_slower_playback_idles_more(self, block):
        drive_a = build_drive()
        half = simulate_variable_speed(
            plan_for(drive_a, block), drive_a, speed=0.5, buffer_capacity=8
        )
        drive_b = build_drive()
        quarter = simulate_variable_speed(
            plan_for(drive_b, block), drive_b, speed=0.25, buffer_capacity=8
        )
        assert quarter.switch_idle_time > half.switch_idle_time

    def test_hopeless_fast_forward_misses(self, block):
        """Without skipping, a big enough speedup exceeds the disk."""
        drive = build_drive()
        result = simulate_variable_speed(
            plan_for(drive, block), drive, speed=10.0, buffer_capacity=16
        )
        assert result.metrics.misses > 0

    def test_validation(self, block):
        drive = build_drive()
        with pytest.raises(ParameterError):
            simulate_variable_speed(
                plan_for(drive, block), drive, speed=1.0, buffer_capacity=0
            )
