"""Unit tests for the Table-1 symbol model."""

import math

import pytest

from repro.core.symbols import (
    AudioStream,
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
    VideoStream,
    audio_block_model,
    video_block_model,
)
from repro.errors import ParameterError


class TestVideoStream:
    def test_bit_rate(self):
        stream = VideoStream(frame_rate=30.0, frame_size=65536.0)
        assert stream.bit_rate == pytest.approx(30.0 * 65536.0)

    def test_unit_duration(self):
        stream = VideoStream(frame_rate=25.0, frame_size=1000.0)
        assert stream.unit_duration == pytest.approx(0.04)

    @pytest.mark.parametrize("rate,size", [(0, 100), (-1, 100), (30, 0), (30, -5)])
    def test_rejects_non_positive(self, rate, size):
        with pytest.raises(ParameterError):
            VideoStream(frame_rate=rate, frame_size=size)


class TestAudioStream:
    def test_bit_rate(self):
        stream = AudioStream(sample_rate=8000.0, sample_size=8.0)
        assert stream.bit_rate == pytest.approx(64000.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ParameterError):
            AudioStream(sample_rate=0.0, sample_size=8.0)


class TestDiskParameters:
    def test_transfer_time(self):
        disk = DiskParameters(
            transfer_rate=1e6, seek_max=0.03, seek_avg=0.02, seek_track=0.005
        )
        assert disk.transfer_time(1e6) == pytest.approx(1.0)
        assert disk.transfer_time(0) == 0.0

    def test_access_time_adds_gap(self):
        disk = DiskParameters(
            transfer_rate=1e6, seek_max=0.03, seek_avg=0.02, seek_track=0.005
        )
        assert disk.access_time(5e5, 0.01) == pytest.approx(0.51)

    def test_rejects_avg_above_max(self):
        with pytest.raises(ParameterError):
            DiskParameters(
                transfer_rate=1e6, seek_max=0.01, seek_avg=0.02,
                seek_track=0.005,
            )

    def test_rejects_track_above_avg(self):
        with pytest.raises(ParameterError):
            DiskParameters(
                transfer_rate=1e6, seek_max=0.03, seek_avg=0.01,
                seek_track=0.02,
            )

    def test_rejects_negative_transfer(self):
        with pytest.raises(ParameterError):
            DiskParameters(
                transfer_rate=-1, seek_max=0.03, seek_avg=0.02,
                seek_track=0.005,
            )

    def test_unconstrained_buffer_bound(self):
        disk = DiskParameters(
            transfer_rate=1e6, seek_max=0.03, seek_avg=0.02,
            seek_track=0.005, cylinders=1000,
        )
        # l_track * n_cyl / target = 0.005*1000/0.02 = 250
        assert disk.unconstrained_buffer_bound(0.02) == 250

    def test_rejects_bad_head_count(self):
        with pytest.raises(ParameterError):
            DiskParameters(
                transfer_rate=1e6, seek_max=0.03, seek_avg=0.02,
                seek_track=0.005, heads=0,
            )


class TestDisplayDeviceParameters:
    def test_defaults(self):
        device = DisplayDeviceParameters(display_rate=1e7)
        assert device.buffer_frames == 2

    def test_rejects_zero_buffer(self):
        with pytest.raises(ParameterError):
            DisplayDeviceParameters(display_rate=1e7, buffer_frames=0)


class TestBlockModel:
    def test_block_bits(self):
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        assert block.block_bits == pytest.approx(4000.0)

    def test_playback_duration_is_eta_over_rate(self):
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        assert block.playback_duration == pytest.approx(4 / 30)

    def test_blocks_per_second_inverse_of_duration(self):
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        assert block.blocks_per_second * block.playback_duration == (
            pytest.approx(1.0)
        )

    def test_read_time_matches_paper_formula(self):
        disk = DiskParameters(
            transfer_rate=1e6, seek_max=0.03, seek_avg=0.02, seek_track=0.005
        )
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        # l_ds + eta*s/R_dr
        assert block.read_time(disk, 0.01) == pytest.approx(0.01 + 4000 / 1e6)

    def test_display_time_matches_paper_formula(self):
        device = DisplayDeviceParameters(display_rate=2e6)
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        assert block.display_time(device) == pytest.approx(4000 / 2e6)

    def test_with_granularity_changes_only_eta(self):
        block = BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=4)
        bigger = block.with_granularity(8)
        assert bigger.granularity == 8
        assert bigger.unit_rate == block.unit_rate
        assert bigger.unit_size == block.unit_size
        assert block.granularity == 4  # original unchanged

    def test_rejects_zero_granularity(self):
        with pytest.raises(ParameterError):
            BlockModel(unit_rate=30.0, unit_size=1000.0, granularity=0)


class TestBuilders:
    def test_video_block_model(self):
        stream = VideoStream(frame_rate=30.0, frame_size=65536.0)
        block = video_block_model(stream, 4)
        assert block.unit_rate == 30.0
        assert block.unit_size == 65536.0
        assert block.granularity == 4

    def test_audio_block_model(self):
        stream = AudioStream(sample_rate=8000.0, sample_size=8.0)
        block = audio_block_model(stream, 2048)
        assert block.block_bits == pytest.approx(2048 * 8)
        assert block.playback_duration == pytest.approx(2048 / 8000)
