"""Unit tests for the §6.2 variable-rate compression extension."""

import pytest

from repro.config import TESTBED_1991
from repro.core import variable_rate as vr
from repro.core.symbols import DiskParameters
from repro.errors import InfeasibleError, ParameterError
from repro.media.codec import DifferencingCodec, FixedRateCodec


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def codec():
    return DifferencingCodec(key_ratio=2.0, diff_ratio=20.0, group_size=10)


@pytest.fixture
def stream():
    return TESTBED_1991.video


class TestBlockSizeProfile:
    def test_fixed_rate_has_no_variability(self, stream, disk):
        profile = vr.block_size_profile(stream, FixedRateCodec(1.0), 4)
        assert profile.min_bits == profile.mean_bits == profile.max_bits
        assert profile.variability == pytest.approx(1.0)

    def test_differencing_varies(self, stream, codec):
        profile = vr.block_size_profile(stream, codec, 1)
        assert profile.max_bits > profile.mean_bits > profile.min_bits
        # Key frame is 10x a diff frame for this codec.
        assert profile.max_bits == pytest.approx(10 * profile.min_bits)

    def test_group_covers_lcm(self, stream, codec):
        # granularity 4 and group 10 -> 20 frames -> 5 blocks per cycle.
        profile = vr.block_size_profile(stream, codec, 4)
        assert profile.group_blocks == 5

    def test_mean_matches_codec_mean(self, stream, codec):
        profile = vr.block_size_profile(stream, codec, 4)
        raw = stream.frame_size * codec.nominal_ratio
        assert profile.mean_bits == pytest.approx(
            4 * codec.mean_compressed_bits(raw)
        )

    def test_inconsistent_profile_rejected(self):
        with pytest.raises(ParameterError):
            vr.BlockSizeProfile(
                granularity=1, min_bits=10, mean_bits=5, max_bits=20,
                group_blocks=1,
            )


class TestBounds:
    def test_average_at_least_strict(self, stream, codec, disk):
        profile = vr.block_size_profile(stream, codec, 4)
        strict = vr.strict_scattering_bound(stream, profile, disk)
        average = vr.average_scattering_bound(stream, profile, disk)
        assert average >= strict

    def test_strict_equals_cbr_at_granularity_one(self, stream, codec, disk):
        """η=1: the worst block IS a key frame = the CBR frame."""
        comparison = vr.vbr_gain(stream, codec, 1, disk)
        assert comparison.vbr_strict_bound == pytest.approx(
            comparison.cbr_bound
        )

    def test_vbr_average_beats_cbr(self, stream, codec, disk):
        """The §6.2 claim: smaller mean frames yield better bounds."""
        for granularity in (1, 2, 4):
            comparison = vr.vbr_gain(stream, codec, granularity, disk)
            assert comparison.vbr_average_bound > comparison.cbr_bound
            assert comparison.gain > 1.0

    def test_fixed_codec_gain_is_one(self, stream, disk):
        comparison = vr.vbr_gain(stream, FixedRateCodec(1.0), 4, disk)
        assert comparison.gain == pytest.approx(1.0)

    def test_read_ahead_is_group(self, stream, codec, disk):
        comparison = vr.vbr_gain(stream, codec, 4, disk)
        assert vr.group_read_ahead(comparison.profile) == 5

    def test_infeasible_stream_raises(self, codec):
        slow = DiskParameters(
            transfer_rate=1e5, seek_max=0.04, seek_avg=0.018,
            seek_track=0.005,
        )
        with pytest.raises(InfeasibleError):
            vr.vbr_gain(TESTBED_1991.video, codec, 4, slow)
