"""Unit tests for unit helpers and the hardware profiles."""

import pytest

from repro import units
from repro.config import (
    FAST_ARRAY_1995,
    HDTV_2_5_GBIT,
    PROFILES,
    TESTBED_1991,
    get_profile,
)


class TestSizeConversions:
    def test_bytes(self):
        assert units.bytes_(1) == 8

    def test_kilobytes_are_binary(self):
        assert units.kilobytes(4) == 4 * 1024 * 8

    def test_megabytes(self):
        assert units.megabytes(1) == 1024 * 1024 * 8

    def test_gigabits(self):
        assert units.gigabits(2.5) == 2.5e9

    def test_bits_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_(123)) == 123


class TestRateAndTime:
    def test_audio_hardware_rate(self):
        # The prototype's 8 KByte/s digitizer.
        assert units.kilobytes_per_second(8) == 8 * 1024 * 8

    def test_milliseconds(self):
        assert units.milliseconds(28) == pytest.approx(0.028)

    def test_minutes(self):
        assert units.minutes(2) == 120.0


class TestFormatting:
    def test_format_bits_magnitudes(self):
        assert "Gbit" in units.format_bits(2.5e9)
        assert "Mbit" in units.format_bits(3e6)
        assert "Kbit" in units.format_bits(5e3)
        assert units.format_bits(12) == "12 bit"

    def test_format_rate_appends_per_second(self):
        assert units.format_rate(1e6).endswith("/s")

    def test_format_seconds_magnitudes(self):
        assert units.format_seconds(1.5).endswith(" s")
        assert "ms" in units.format_seconds(0.005)
        assert "µs" in units.format_seconds(5e-6)


class TestProfiles:
    def test_registry_contains_all(self):
        assert set(PROFILES) == {
            "testbed-1991", "hdtv-2.5gbit", "fast-array-1995"
        }

    def test_get_profile(self):
        assert get_profile("testbed-1991") is TESTBED_1991

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("nonexistent")

    def test_testbed_matches_paper_figures(self):
        # 30 fps NTSC video, 8 KByte/s audio (8000 x 8-bit samples).
        assert TESTBED_1991.video.frame_rate == 30.0
        assert TESTBED_1991.audio.sample_rate == 8000.0
        assert TESTBED_1991.audio.sample_size == 8.0

    def test_hdtv_demand_is_2_5_gbit(self):
        assert HDTV_2_5_GBIT.video.bit_rate == pytest.approx(2.5e9)
        assert HDTV_2_5_GBIT.disk.heads == 100

    def test_profiles_internally_consistent(self):
        for profile in PROFILES.values():
            disk = profile.disk
            assert disk.seek_track <= disk.seek_avg <= disk.seek_max
            assert profile.video.bit_rate > 0
            assert profile.audio.bit_rate > 0

    def test_fast_array_heads(self):
        assert FAST_ARRAY_1995.disk.heads == 4
