"""Unit tests for the general Eq.-(11) per-request k solver."""

import pytest

from repro.core import admission as adm
from repro.core.symbols import BlockModel, DiskParameters


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def video(disk):
    return adm.RequestDescriptor(
        BlockModel(30.0, 65536.0, 4), scattering_avg=disk.seek_avg
    )


@pytest.fixture
def audio(disk):
    return adm.RequestDescriptor(
        BlockModel(8000.0, 8.0, 4096), scattering_avg=disk.seek_avg
    )


class TestSolveHeterogeneousK:
    def test_empty_set(self, disk):
        assert adm.solve_heterogeneous_k([], disk) == []

    def test_solution_satisfies_eq11(self, disk, video, audio):
        mix = [video] * 2 + [audio] * 4
        ks = adm.solve_heterogeneous_k(mix, disk)
        assert ks is not None
        assert adm.round_feasible(mix, disk, ks)

    def test_slow_drainers_get_smaller_k(self, disk, video, audio):
        mix = [video, audio]
        ks = adm.solve_heterogeneous_k(mix, disk)
        assert ks is not None
        video_k, audio_k = ks
        assert audio_k <= video_k

    def test_rescues_mix_uniform_model_rejects(self, disk, video, audio):
        mix = [video] * 2 + [audio] * 4
        with pytest.raises(adm.AdmissionRejected):
            adm.k_transition(adm.service_parameters(mix, disk))
        assert adm.solve_heterogeneous_k(mix, disk) is not None

    def test_uniform_workload_matches_steady_k_scale(self, disk, video):
        """On homogeneous sets the solver lands near Eq. (16)'s k."""
        mix = [video] * 2
        ks = adm.solve_heterogeneous_k(mix, disk)
        assert ks is not None
        assert len(set(ks)) == 1
        steady = adm.k_steady(adm.service_parameters(mix, disk))
        # The solver uses exact per-request times (no worst-case switch
        # averaging), so it may do slightly better — never much worse.
        assert ks[0] <= max(steady, 1) + 2

    def test_overload_returns_none(self, disk, video):
        hopeless = [video] * 50
        assert adm.solve_heterogeneous_k(hopeless, disk) is None

    def test_minimality_of_budget(self, disk, video, audio):
        """Shrinking any k_i below the solution must break Eq. (11) or
        already be at the floor of 1."""
        mix = [video] * 2 + [audio] * 2
        ks = adm.solve_heterogeneous_k(mix, disk)
        assert ks is not None
        # A uniformly smaller budget (scale all k down one block on the
        # binding request) must be infeasible unless already at 1.
        binding = min(
            range(len(mix)),
            key=lambda i: ks[i] * mix[i].block_playback,
        )
        if ks[binding] > 1:
            smaller = list(ks)
            smaller[binding] -= 1
            assert not adm.round_feasible(mix, disk, smaller)
