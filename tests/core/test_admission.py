"""Unit tests for the §3.4 admission-control model (Eqs. 7-18)."""

import math

import pytest

from repro.core import admission as adm
from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import AdmissionRejected, ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def block():
    return BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=4)


@pytest.fixture
def descriptor(disk, block):
    return adm.RequestDescriptor(block=block, scattering_avg=disk.seek_avg)


class TestRequestDescriptor:
    def test_switch_time_eq7(self, descriptor, disk):
        expected = disk.seek_max + 4 * 65536 / 10e6
        assert descriptor.switch_time(disk) == pytest.approx(expected)

    def test_continue_time_eq8(self, descriptor, disk):
        k = 5
        per_block = disk.seek_avg + 4 * 65536 / 10e6
        assert descriptor.continue_time(disk, k) == pytest.approx(
            (k - 1) * per_block
        )

    def test_service_time_eq9_is_sum(self, descriptor, disk):
        assert descriptor.service_time(disk, 3) == pytest.approx(
            descriptor.switch_time(disk) + descriptor.continue_time(disk, 3)
        )

    def test_continue_time_k1_is_zero(self, descriptor, disk):
        assert descriptor.continue_time(disk, 1) == 0.0

    def test_rejects_negative_scattering(self, block):
        with pytest.raises(ParameterError):
            adm.RequestDescriptor(block=block, scattering_avg=-0.1)


class TestServiceParameters:
    def test_alpha_beta_gamma_eqs_12_14(self, descriptor, disk):
        params = adm.service_parameters([descriptor] * 3, disk)
        transfer = 4 * 65536 / 10e6
        assert params.alpha == pytest.approx(disk.seek_max + transfer)
        assert params.beta == pytest.approx(disk.seek_avg + transfer)
        assert params.gamma == pytest.approx(4 / 30)
        assert params.n == 3

    def test_alpha_at_least_beta(self, descriptor, disk):
        params = adm.service_parameters([descriptor], disk)
        assert params.alpha >= params.beta

    def test_gamma_is_minimum_over_requests(self, disk, block):
        fast = adm.RequestDescriptor(
            block=block.with_granularity(2), scattering_avg=disk.seek_avg
        )
        slow = adm.RequestDescriptor(
            block=block.with_granularity(8), scattering_avg=disk.seek_avg
        )
        params = adm.service_parameters([fast, slow], disk)
        assert params.gamma == pytest.approx(2 / 30)

    def test_empty_request_set_rejected(self, disk):
        with pytest.raises(ParameterError):
            adm.service_parameters([], disk)


class TestKFormulas:
    def test_k_steady_eq16(self, descriptor, disk):
        params = adm.service_parameters([descriptor] * 2, disk)
        expected = math.ceil(
            params.n * (params.alpha - params.beta)
            / (params.gamma - params.n * params.beta)
        )
        assert adm.k_steady(params) == max(1, expected)

    def test_k_transition_eq18_at_least_steady(self, descriptor, disk):
        for n in (1, 2, 3):
            params = adm.service_parameters([descriptor] * n, disk)
            assert adm.k_transition(params) >= adm.k_steady(params)

    def test_k_monotone_in_n(self, descriptor, disk):
        params1 = adm.service_parameters([descriptor], disk)
        limit = adm.n_max(params1)
        ks = []
        for n in range(1, limit + 1):
            params = adm.service_parameters([descriptor] * n, disk)
            ks.append(adm.k_transition(params))
        assert ks == sorted(ks)

    def test_k_rejects_beyond_capacity(self, descriptor, disk):
        params1 = adm.service_parameters([descriptor], disk)
        limit = adm.n_max(params1)
        params = adm.service_parameters([descriptor] * (limit + 1), disk)
        with pytest.raises(AdmissionRejected):
            adm.k_steady(params)
        with pytest.raises(AdmissionRejected):
            adm.k_transition(params)

    def test_n_max_eq17(self, descriptor, disk):
        params = adm.service_parameters([descriptor], disk)
        assert adm.n_max(params) == math.ceil(
            params.gamma / params.beta
        ) - 1

    def test_steady_state_inequality_holds_at_k(self, descriptor, disk):
        """Eq. 15 must hold at the returned k: nα + n(k−1)β ≤ kγ."""
        params1 = adm.service_parameters([descriptor], disk)
        for n in range(1, adm.n_max(params1) + 1):
            params = adm.service_parameters([descriptor] * n, disk)
            k = adm.k_steady(params)
            left = n * params.alpha + n * (k - 1) * params.beta
            assert left <= k * params.gamma + 1e-12

    def test_transition_inequality_holds_at_k(self, descriptor, disk):
        """Eq. 18 must hold at the returned k: nα + nkβ ≤ kγ."""
        params1 = adm.service_parameters([descriptor], disk)
        for n in range(1, adm.n_max(params1) + 1):
            params = adm.service_parameters([descriptor] * n, disk)
            k = adm.k_transition(params)
            left = n * params.alpha + n * k * params.beta
            assert left <= k * params.gamma + 1e-12


class TestRoundFeasibility:
    def test_round_time_eq10(self, descriptor, disk):
        requests = [descriptor] * 3
        ks = [2, 3, 4]
        expected = sum(
            r.service_time(disk, k) for r, k in zip(requests, ks)
        )
        assert adm.round_time(requests, disk, ks) == pytest.approx(expected)

    def test_round_feasible_eq11(self, descriptor, disk):
        requests = [descriptor] * 2
        # Huge k: plenty of playback budget per round.
        assert adm.round_feasible(requests, disk, [50, 50])
        # k=1 for many requests on this disk fails (switch overheads
        # exceed one block's playback).
        many = [descriptor] * 3
        assert not adm.round_feasible(many, disk, [1, 1, 1])

    def test_empty_round_is_feasible(self, disk):
        assert adm.round_feasible([], disk, [])

    def test_mismatched_lengths_rejected(self, descriptor, disk):
        with pytest.raises(ParameterError):
            adm.round_time([descriptor], disk, [1, 2])


class TestAdmissionController:
    def test_admits_up_to_n_max_then_rejects(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        params = adm.service_parameters([descriptor], disk)
        limit = adm.n_max(params)
        for _ in range(limit):
            controller.admit(descriptor)
        assert controller.active_count == limit
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(descriptor)
        assert excinfo.value.active == limit
        assert controller.active_count == limit  # rejected = no state change

    def test_transition_plan_steps_of_one(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        first = controller.admit(descriptor)
        second = controller.admit(descriptor)
        plan = second.transition
        if plan.k_new > plan.k_old:
            assert plan.steps == tuple(
                range(plan.k_old + 1, plan.k_new + 1)
            )
            assert plan.rounds_required == plan.k_new - plan.k_old

    def test_release_shrinks_k(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        controller.admit(descriptor)
        decision = controller.admit(descriptor)
        k_two = controller.current_k
        plan = controller.release(decision.request_id)
        assert controller.active_count == 1
        assert controller.current_k <= k_two
        assert plan.steps == ()  # shrinking needs no staging

    def test_release_last_request_zeroes_k(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        decision = controller.admit(descriptor)
        controller.release(decision.request_id)
        assert controller.active_count == 0
        assert controller.current_k == 0

    def test_release_unknown_id_rejected(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        with pytest.raises(ParameterError):
            controller.release(99)

    def test_can_admit_is_non_mutating(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        assert controller.can_admit(descriptor)
        assert controller.active_count == 0

    def test_readmission_after_release(self, descriptor, disk):
        controller = adm.AdmissionController(disk)
        params = adm.service_parameters([descriptor], disk)
        limit = adm.n_max(params)
        decisions = [controller.admit(descriptor) for _ in range(limit)]
        with pytest.raises(AdmissionRejected):
            controller.admit(descriptor)
        controller.release(decisions[0].request_id)
        controller.admit(descriptor)  # now fits again
        assert controller.active_count == limit
