"""Unit tests for §3.3.4 granularity and scattering derivation."""

import pytest

from repro.core import granularity as gran
from repro.core.continuity import Architecture
from repro.core.symbols import (
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
)
from repro.errors import InfeasibleError, ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def device():
    return DisplayDeviceParameters(display_rate=16e6, buffer_frames=8)


@pytest.fixture
def block():
    return BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=1)


class TestGranularityRange:
    def test_sequential_uses_full_buffer(self, device):
        feasible = gran.granularity_range(Architecture.SEQUENTIAL, device)
        assert list(feasible) == list(range(1, 9))

    def test_pipelined_halves_buffer(self, device):
        feasible = gran.granularity_range(Architecture.PIPELINED, device)
        assert feasible[-1] == 4

    def test_concurrent_divides_by_p(self, device):
        feasible = gran.granularity_range(
            Architecture.CONCURRENT, device, p=4
        )
        assert feasible[-1] == 2

    def test_single_frame_buffer_forces_eta_one_sequential(self):
        tiny = DisplayDeviceParameters(display_rate=1e6, buffer_frames=1)
        feasible = gran.granularity_range(Architecture.SEQUENTIAL, tiny)
        assert list(feasible) == [1]

    def test_single_frame_buffer_infeasible_pipelined(self):
        tiny = DisplayDeviceParameters(display_rate=1e6, buffer_frames=1)
        with pytest.raises(InfeasibleError):
            gran.granularity_range(Architecture.PIPELINED, tiny)

    def test_max_granularity_is_range_top(self, device):
        assert gran.max_granularity(Architecture.PIPELINED, device) == 4


class TestScatteringLowerBound:
    def test_inverts_eq19(self, disk):
        # C_b = l_seek_max / (2 l_lower)  =>  l_lower = l_seek_max / (2 C_b)
        for budget in (1, 2, 4, 8):
            lower = gran.scattering_lower_bound(disk, budget)
            assert lower == pytest.approx(disk.seek_max / (2 * budget))

    def test_zero_budget_disables(self, disk):
        assert gran.scattering_lower_bound(disk, 0) == 0.0

    def test_negative_budget_rejected(self, disk):
        with pytest.raises(ParameterError):
            gran.scattering_lower_bound(disk, -1)

    def test_larger_budget_means_smaller_lower_bound(self, disk):
        assert gran.scattering_lower_bound(disk, 8) < (
            gran.scattering_lower_bound(disk, 2)
        )


class TestDerivePolicy:
    def test_default_uses_max_granularity(self, block, disk, device):
        policy = gran.derive_policy(block, disk, device)
        assert policy.granularity == 4  # pipelined, buffer 8

    def test_window_is_consistent(self, block, disk, device):
        policy = gran.derive_policy(block, disk, device, copy_budget=4)
        assert 0 < policy.scattering_lower < policy.scattering_upper
        assert policy.admits(policy.scattering_lower)
        assert policy.admits(policy.scattering_upper)
        assert not policy.admits(policy.scattering_upper * 1.01)
        assert policy.scattering_window == pytest.approx(
            policy.scattering_upper - policy.scattering_lower
        )

    def test_explicit_granularity_respected(self, block, disk, device):
        policy = gran.derive_policy(block, disk, device, granularity=2)
        assert policy.granularity == 2

    def test_granularity_outside_device_range_rejected(
        self, block, disk, device
    ):
        with pytest.raises(ParameterError):
            gran.derive_policy(block, disk, device, granularity=5)

    def test_larger_granularity_tolerates_more_scattering(
        self, block, disk, device
    ):
        small = gran.derive_policy(block, disk, device, granularity=1)
        large = gran.derive_policy(block, disk, device, granularity=4)
        assert large.scattering_upper > small.scattering_upper

    def test_impossible_copy_budget_raises(self, block, device):
        # A slow-seeking disk plus a tiny copy budget forces the lower
        # bound (l_seek_max / 2) above the continuity upper bound.
        sluggish = DiskParameters(
            transfer_rate=10e6, seek_max=0.2, seek_avg=0.018,
            seek_track=0.005,
        )
        with pytest.raises(InfeasibleError):
            gran.derive_policy(
                block, sluggish, device, granularity=1, copy_budget=1
            )

    def test_block_bits_match(self, block, disk, device):
        policy = gran.derive_policy(block, disk, device, granularity=3)
        assert policy.block_bits == pytest.approx(3 * 65536)


class TestPlacementPolicyValidation:
    def test_inverted_window_raises(self):
        with pytest.raises(InfeasibleError):
            gran.PlacementPolicy(
                granularity=1, block_bits=1000.0,
                scattering_lower=0.05, scattering_upper=0.01,
                architecture=Architecture.PIPELINED,
            )

    def test_negative_lower_rejected(self):
        with pytest.raises(ParameterError):
            gran.PlacementPolicy(
                granularity=1, block_bits=1000.0,
                scattering_lower=-0.01, scattering_upper=0.01,
                architecture=Architecture.PIPELINED,
            )
