"""Unit tests for §4.2 editing copy bounds (Eqs. 19-20)."""

import math

import pytest

from repro.core import editing_bounds as eb
from repro.core.symbols import DiskParameters
from repro.errors import ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


class TestCopyBounds:
    def test_eq19_sparse(self):
        assert eb.copy_bound_sparse(0.040, 0.005) == math.ceil(
            0.040 / (2 * 0.005)
        )

    def test_eq20_dense(self):
        assert eb.copy_bound_dense(0.040, 0.005) == math.ceil(0.040 / 0.005)

    def test_dense_is_twice_sparse(self):
        # For exact divisions, Eq. 20 = 2 x Eq. 19.
        assert eb.copy_bound_dense(0.040, 0.005) == (
            2 * eb.copy_bound_sparse(0.040, 0.005)
        )

    def test_smaller_lower_bound_means_more_copies(self):
        assert eb.copy_bound_sparse(0.040, 0.002) > (
            eb.copy_bound_sparse(0.040, 0.010)
        )

    def test_zero_lower_bound_rejected(self):
        with pytest.raises(ParameterError):
            eb.copy_bound_sparse(0.040, 0.0)

    def test_negative_seek_rejected(self):
        with pytest.raises(ParameterError):
            eb.copy_bound_dense(-0.01, 0.005)


class TestOccupancySelection:
    def test_sparse_regime_below_threshold(self):
        assert eb.copy_bound(0.040, 0.005, occupancy=0.2) == (
            eb.copy_bound_sparse(0.040, 0.005)
        )

    def test_dense_regime_at_threshold(self):
        assert eb.copy_bound(
            0.040, 0.005, occupancy=eb.DENSE_OCCUPANCY_THRESHOLD
        ) == eb.copy_bound_dense(0.040, 0.005)

    def test_occupancy_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            eb.copy_bound(0.040, 0.005, occupancy=1.5)


class TestSeamRepairBound:
    def test_picks_minimum_side(self, disk):
        bound = eb.seam_repair_bound(
            disk,
            predecessor_scattering_lower=0.010,
            successor_scattering_lower=0.004,
            occupancy=0.1,
        )
        assert bound.from_predecessor == eb.copy_bound_sparse(
            disk.seek_max, 0.010
        )
        assert bound.from_successor == eb.copy_bound_sparse(
            disk.seek_max, 0.004
        )
        assert bound.copies == min(
            bound.from_predecessor, bound.from_successor
        )
        assert not bound.dense

    def test_dense_flag_set(self, disk):
        bound = eb.seam_repair_bound(disk, 0.005, 0.005, occupancy=0.9)
        assert bound.dense
        assert bound.copies == eb.copy_bound_dense(disk.seek_max, 0.005)
