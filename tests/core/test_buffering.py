"""Unit tests for §3.3.2 buffering and read-ahead requirements."""

import math

import pytest

from repro.core import buffering
from repro.core.continuity import Architecture
from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def block():
    return BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=4)


class TestStrictAndAverageBuffers:
    def test_strict_continuity_counts(self):
        # k = 1 reduces to the strict 1/2/p counts of §3.3.2.
        assert buffering.buffers_for_average_continuity(
            Architecture.SEQUENTIAL, 1
        ) == 1
        assert buffering.buffers_for_average_continuity(
            Architecture.PIPELINED, 1
        ) == 2
        assert buffering.buffers_for_average_continuity(
            Architecture.CONCURRENT, 1, p=5
        ) == 5

    @pytest.mark.parametrize("k", [1, 2, 4, 16])
    def test_average_counts_k_2k_pk(self, k):
        assert buffering.buffers_for_average_continuity(
            Architecture.SEQUENTIAL, k
        ) == k
        assert buffering.buffers_for_average_continuity(
            Architecture.PIPELINED, k
        ) == 2 * k
        assert buffering.buffers_for_average_continuity(
            Architecture.CONCURRENT, k, p=3
        ) == 3 * k

    @pytest.mark.parametrize("k", [1, 2, 8])
    def test_read_ahead_k_and_pk(self, k):
        assert buffering.read_ahead_required(Architecture.SEQUENTIAL, k) == k
        assert buffering.read_ahead_required(Architecture.PIPELINED, k) == k
        assert buffering.read_ahead_required(
            Architecture.CONCURRENT, k, p=4
        ) == 4 * k

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            buffering.read_ahead_required(Architecture.PIPELINED, 0)

    def test_rejects_bad_p(self):
        with pytest.raises(ParameterError):
            buffering.buffers_for_average_continuity(
                Architecture.CONCURRENT, 1, p=0
            )


class TestTaskSwitchReadAhead:
    def test_h_covers_max_seek(self, block, disk):
        h = buffering.task_switch_read_ahead(block, disk)
        assert h == math.ceil(disk.seek_max * block.blocks_per_second)
        # h blocks of playback must cover the worst re-positioning delay.
        assert h * block.playback_duration >= disk.seek_max

    def test_h_grows_with_seek(self, block, disk):
        slower = DiskParameters(
            transfer_rate=disk.transfer_rate, seek_max=0.5,
            seek_avg=0.018, seek_track=0.005,
        )
        assert buffering.task_switch_read_ahead(block, slower) >= (
            buffering.task_switch_read_ahead(block, disk)
        )


class TestPlan:
    def test_plan_combines_pieces(self, block, disk):
        plan = buffering.plan(
            Architecture.PIPELINED, block, disk, k=3,
            allow_task_switch=True,
        )
        assert plan.read_ahead == 3
        assert plan.buffers == 6
        assert plan.switch_read_ahead >= 1
        assert plan.total_reserved == plan.buffers + plan.switch_read_ahead

    def test_plan_without_task_switch(self, block, disk):
        plan = buffering.plan(Architecture.SEQUENTIAL, block, disk, k=2)
        assert plan.switch_read_ahead == 0
        assert plan.total_reserved == plan.buffers


class TestFastForward:
    def test_without_skipping_inflates_rate(self, block):
        fast = buffering.fast_forward_block(block, 2.0, skipping=False)
        assert fast.unit_rate == pytest.approx(60.0)
        assert fast.playback_duration == pytest.approx(
            block.playback_duration / 2
        )

    def test_with_skipping_keeps_block_rate(self, block):
        fast = buffering.fast_forward_block(block, 2.0, skipping=True)
        # Fetching every 2nd block at 2x speed: block fetch rate unchanged.
        assert fast.unit_rate == pytest.approx(block.unit_rate)

    def test_fractional_speedup_with_skipping(self, block):
        fast = buffering.fast_forward_block(block, 1.5, skipping=True)
        # stride ceil(1.5)=2, so effective rate scales by 1.5/2.
        assert fast.unit_rate == pytest.approx(block.unit_rate * 0.75)

    def test_rejects_non_positive_speedup(self, block):
        with pytest.raises(ParameterError):
            buffering.fast_forward_block(block, 0.0, skipping=False)


class TestSlowMotion:
    def test_accumulation_positive_when_disk_outruns_display(
        self, block, disk
    ):
        rate = buffering.slow_motion_accumulation_rate(
            block, disk, scattering=disk.seek_avg, slowdown=4.0
        )
        assert rate > 0

    def test_accumulation_shrinks_with_less_slowdown(self, block, disk):
        slow4 = buffering.slow_motion_accumulation_rate(
            block, disk, scattering=disk.seek_avg, slowdown=4.0
        )
        slow2 = buffering.slow_motion_accumulation_rate(
            block, disk, scattering=disk.seek_avg, slowdown=2.0
        )
        assert slow4 > slow2

    def test_rejects_speedup_disguised_as_slowdown(self, block, disk):
        with pytest.raises(ParameterError):
            buffering.slow_motion_accumulation_rate(
                block, disk, scattering=0.01, slowdown=0.5
            )
