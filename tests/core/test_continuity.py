"""Unit tests for the continuity equations (Eqs. 1-6)."""

import pytest

from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.symbols import (
    BlockModel,
    DiskParameters,
    DisplayDeviceParameters,
)
from repro.errors import InfeasibleError, ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.030, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def device():
    return DisplayDeviceParameters(display_rate=16e6, buffer_frames=8)


@pytest.fixture
def block():
    # 4 frames x 65536 bits at 30 fps: playback 133.3 ms, transfer 26.2 ms.
    return BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=4)


class TestEquationForms:
    """Each slack function must equal its hand-expanded paper formula."""

    def test_eq1_sequential(self, block, disk, device):
        l_ds = 0.02
        expected = (4 / 30) - (
            l_ds + 4 * 65536 / 10e6 + 4 * 65536 / 16e6
        )
        assert continuity.sequential_slack(
            block, disk, device, l_ds
        ) == pytest.approx(expected)

    def test_eq2_pipelined(self, block, disk):
        l_ds = 0.02
        expected = (4 / 30) - (l_ds + 4 * 65536 / 10e6)
        assert continuity.pipelined_slack(block, disk, l_ds) == (
            pytest.approx(expected)
        )

    def test_eq3_concurrent(self, block, disk):
        l_ds = 0.02
        p = 4
        expected = (p - 1) * (4 / 30) - (l_ds + 4 * 65536 / 10e6)
        assert continuity.concurrent_slack(block, disk, l_ds, p) == (
            pytest.approx(expected)
        )

    def test_concurrent_p1_never_feasible_with_positive_access(
        self, block, disk
    ):
        assert continuity.concurrent_slack(block, disk, 0.0, 1) < 0

    def test_concurrent_rejects_p_zero(self, block, disk):
        with pytest.raises(ParameterError):
            continuity.concurrent_slack(block, disk, 0.0, 0)


class TestOrdering:
    """Pipelined tolerates more than sequential; concurrency helps more."""

    def test_pipelined_bound_exceeds_sequential(self, block, disk, device):
        sequential = continuity.max_scattering(
            Architecture.SEQUENTIAL, block, disk, device
        )
        pipelined = continuity.max_scattering(
            Architecture.PIPELINED, block, disk, device
        )
        assert pipelined > sequential

    def test_concurrent_bound_grows_with_p(self, block, disk, device):
        bounds = [
            continuity.max_scattering(
                Architecture.CONCURRENT, block, disk, device, p
            )
            for p in (2, 3, 4)
        ]
        assert bounds == sorted(bounds)
        assert bounds[0] < bounds[-1]

    def test_slack_decreases_with_scattering(self, block, disk, device):
        slacks = [
            continuity.slack(
                Architecture.PIPELINED, block, disk, device, l_ds
            )
            for l_ds in (0.0, 0.01, 0.05, 0.1)
        ]
        assert slacks == sorted(slacks, reverse=True)


class TestMaxScattering:
    def test_bound_is_exactly_zero_slack(self, block, disk, device):
        for architecture in (
            Architecture.SEQUENTIAL, Architecture.PIPELINED
        ):
            bound = continuity.max_scattering(
                architecture, block, disk, device
            )
            assert continuity.slack(
                architecture, block, disk, device, bound
            ) == pytest.approx(0.0, abs=1e-12)

    def test_infeasible_raises(self, disk, device):
        # One HDTV-sized frame per block at 60 fps cannot stream at 10 Mbit/s.
        monster = BlockModel(unit_rate=60.0, unit_size=4e7, granularity=1)
        with pytest.raises(InfeasibleError):
            continuity.max_scattering(
                Architecture.PIPELINED, monster, disk, device
            )

    def test_is_continuous_consistent_with_check(self, block, disk, device):
        for l_ds in (0.0, 0.05, 0.2):
            verdict = continuity.check(
                Architecture.PIPELINED, block, disk, device, l_ds
            )
            assert verdict.feasible == continuity.is_continuous(
                Architecture.PIPELINED, block, disk, device, l_ds
            )
            assert verdict.slack == pytest.approx(
                verdict.budget - verdict.demand
            )


class TestMinConcurrency:
    def test_min_concurrency_is_sufficient(self, block, disk, device):
        l_ds = 0.25  # far beyond single-head bounds
        p = continuity.min_concurrency(block, disk, l_ds)
        assert continuity.concurrent_slack(block, disk, l_ds, p) >= 0
        if p > 2:
            assert continuity.concurrent_slack(block, disk, l_ds, p - 1) < 0


class TestMinGranularity:
    def test_result_is_feasible_and_tight(self, disk, device):
        block = BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=1)
        l_ds = 0.05
        eta = continuity.min_granularity(
            Architecture.PIPELINED, block, disk, device, l_ds
        )
        sized = block.with_granularity(eta)
        assert continuity.pipelined_slack(sized, disk, l_ds) >= 0
        if eta > 1:
            smaller = block.with_granularity(eta - 1)
            assert continuity.pipelined_slack(smaller, disk, l_ds) < 0

    def test_infeasible_per_unit_budget_raises(self, device):
        slow = DiskParameters(
            transfer_rate=1e5, seek_max=0.03, seek_avg=0.02, seek_track=0.005
        )
        block = BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=1)
        with pytest.raises(InfeasibleError):
            continuity.min_granularity(
                Architecture.PIPELINED, block, slow, device, 0.01
            )


class TestMixedMedia:
    @pytest.fixture
    def audio_block(self):
        # 2048 samples x 8 bits at 8 kHz: 256 ms blocks.
        return BlockModel(unit_rate=8000.0, unit_size=8.0, granularity=2048)

    def test_heterogeneous_dominates_homogeneous(
        self, block, audio_block, disk
    ):
        homogeneous = continuity.max_scattering_mixed(
            block, audio_block, disk, heterogeneous=False
        )
        heterogeneous = continuity.max_scattering_mixed(
            block, audio_block, disk, heterogeneous=True
        )
        # One positioning delay per period beats n+1 of them.
        assert heterogeneous > homogeneous

    def test_eq5_reduction_when_durations_match(self, disk):
        # Audio block sized to exactly one video block duration (n = 1):
        # 25 fps, 4-frame blocks -> 0.16 s -> exactly 1280 samples at 8 kHz.
        video = BlockModel(unit_rate=25.0, unit_size=65536.0, granularity=4)
        audio = BlockModel(unit_rate=8000.0, unit_size=8.0, granularity=1280)
        l_ds = 0.01
        expected = video.playback_duration - (
            2 * l_ds + (video.block_bits + audio.block_bits) / 10e6
        )
        assert continuity.mixed_homogeneous_slack(
            video, audio, disk, l_ds
        ) == pytest.approx(expected, rel=1e-6)

    def test_eq6_single_gap(self, disk):
        video = BlockModel(unit_rate=25.0, unit_size=65536.0, granularity=4)
        audio = BlockModel(unit_rate=8000.0, unit_size=8.0, granularity=1280)
        l_ds = 0.01
        expected = video.playback_duration - (
            l_ds + (video.block_bits + audio.block_bits) / 10e6
        )
        assert continuity.mixed_heterogeneous_slack(
            video, audio, disk, l_ds
        ) == pytest.approx(expected, rel=1e-6)

    def test_mixed_infeasible_raises(self, audio_block, device):
        slow = DiskParameters(
            transfer_rate=1e6, seek_max=0.03, seek_avg=0.02, seek_track=0.005
        )
        video = BlockModel(unit_rate=30.0, unit_size=65536.0, granularity=4)
        with pytest.raises(InfeasibleError):
            continuity.max_scattering_mixed(
                video, audio_block, slow, heterogeneous=True
            )


class TestThroughputAndBuffers:
    def test_effective_throughput_hdtv_example(self):
        # 100 heads, 10 ms access, 4 KB blocks, 80 Mbit/s per head.
        disk = DiskParameters(
            transfer_rate=80e6, seek_max=0.010, seek_avg=0.010,
            seek_track=0.001, heads=100,
        )
        block_bits = 4 * 1024 * 8
        throughput = continuity.effective_throughput(
            block_bits, disk, 0.010
        )
        assert throughput == pytest.approx(0.315e9, rel=0.02)

    def test_throughput_improves_with_smaller_gap(self, disk):
        tight = continuity.effective_throughput(1e6, disk, 0.001)
        loose = continuity.effective_throughput(1e6, disk, 0.030)
        assert tight > loose

    def test_buffer_counts(self):
        assert continuity.buffers_required(Architecture.SEQUENTIAL) == 1
        assert continuity.buffers_required(Architecture.PIPELINED) == 2
        assert continuity.buffers_required(
            Architecture.CONCURRENT, p=7
        ) == 7
