"""Unit tests for the general (per-request k) admission controller."""

import pytest

from repro.core import admission as adm
from repro.core.general_admission import GeneralAdmissionController
from repro.core.symbols import BlockModel, DiskParameters
from repro.errors import AdmissionRejected, ParameterError


@pytest.fixture
def disk():
    return DiskParameters(
        transfer_rate=10e6, seek_max=0.040, seek_avg=0.018, seek_track=0.005
    )


@pytest.fixture
def video(disk):
    return adm.RequestDescriptor(
        BlockModel(30.0, 65536.0, 4), scattering_avg=disk.seek_avg
    )


@pytest.fixture
def audio(disk):
    return adm.RequestDescriptor(
        BlockModel(8000.0, 8.0, 4096), scattering_avg=disk.seek_avg
    )


class TestGeneralController:
    def test_admits_mixed_workload(self, disk, video, audio):
        controller = GeneralAdmissionController(disk)
        for descriptor in [video, video, audio, audio, audio, audio]:
            controller.admit(descriptor)
        assert controller.active_count == 6
        ks = controller.k_values()
        assert adm.round_feasible(
            [video, video, audio, audio, audio, audio], disk,
            [ks[i] for i in sorted(ks)],
        )

    def test_beats_uniform_controller_on_mixes(self, disk, video, audio):
        uniform = adm.AdmissionController(disk)
        general = GeneralAdmissionController(disk)
        mix = [video, video] + [audio] * 4
        uniform_admitted = 0
        for descriptor in mix:
            try:
                uniform.admit(descriptor)
                uniform_admitted += 1
            except AdmissionRejected:
                break
        general_admitted = 0
        for descriptor in mix:
            try:
                general.admit(descriptor)
                general_admitted += 1
            except AdmissionRejected:
                break
        assert general_admitted > uniform_admitted

    def test_rejects_at_true_capacity(self, disk, video):
        controller = GeneralAdmissionController(disk, budget_limit=10.0)
        admitted = 0
        with pytest.raises(AdmissionRejected):
            for _ in range(50):
                controller.admit(video)
                admitted += 1
        assert admitted >= 1
        assert controller.active_count == admitted

    def test_transition_rounds_reported(self, disk, video):
        controller = GeneralAdmissionController(disk)
        first = controller.admit(video)
        second = controller.admit(video)
        assert second.transition_rounds >= 0
        k_after = controller.k_for(second.request_id)
        assert k_after >= 1

    def test_release_shrinks_k(self, disk, video):
        controller = GeneralAdmissionController(disk)
        a = controller.admit(video)
        b = controller.admit(video)
        k_two = controller.k_for(a.request_id)
        controller.release(b.request_id)
        assert controller.active_count == 1
        assert controller.k_for(a.request_id) <= k_two

    def test_release_last_clears(self, disk, video):
        controller = GeneralAdmissionController(disk)
        decision = controller.admit(video)
        controller.release(decision.request_id)
        assert controller.active_count == 0
        assert controller.k_values() == {}

    def test_release_unknown(self, disk):
        controller = GeneralAdmissionController(disk)
        with pytest.raises(ParameterError):
            controller.release(3)

    def test_can_admit_non_mutating(self, disk, video):
        controller = GeneralAdmissionController(disk)
        assert controller.can_admit(video)
        assert controller.active_count == 0


class TestSimulatedMixedWorkload:
    def test_solved_ks_play_continuously(self, disk, video, audio):
        """Close the E20 loop: simulate the mixed workload at the solved
        per-request k_i and verify zero misses end to end."""
        from repro.analysis.experiments import fetches_with_gap
        from repro.disk import build_drive
        from repro.service.rounds import RoundRobinService, StreamState

        drive = build_drive()
        params = drive.parameters()
        mix = [video, video, audio, audio]
        ks = adm.solve_heterogeneous_k(mix, params)
        assert ks is not None
        streams = []
        for index, (descriptor, k) in enumerate(zip(mix, ks)):
            block = descriptor.block
            fetches = fetches_with_gap(
                drive, 40, params.seek_avg, block.block_bits,
                block.playback_duration,
            )
            streams.append(
                StreamState(
                    request_id=f"s{index}",
                    fetches=fetches,
                    buffer_capacity=2 * k,
                    k_override=k,
                )
            )
        service = RoundRobinService(drive, lambda r, n: max(ks))
        metrics = service.run(streams)
        assert all(m.continuous for m in metrics.values())
