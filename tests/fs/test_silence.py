"""Unit tests for the silence-elimination recording plan."""

import random

import pytest

from repro.config import TESTBED_1991
from repro.errors import ParameterError
from repro.fs.silence import plan_audio_blocks
from repro.media.audio import AudioChunk, SilenceDetector, generate_talk_spurts


@pytest.fixture
def stream():
    return TESTBED_1991.audio


class TestPlanning:
    def test_all_speech_stores_everything(self, stream):
        chunks = [AudioChunk(start_sample=0, count=1000, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        assert plan.block_count == 10
        assert plan.stored_count == 10
        assert plan.silent_count == 0

    def test_all_silence_stores_nothing(self, stream):
        chunks = [AudioChunk(start_sample=0, count=1000, energy=0.01)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        assert plan.stored_count == 0
        assert plan.silent_count == 10

    def test_detector_none_disables_elimination(self, stream):
        chunks = [AudioChunk(start_sample=0, count=1000, energy=0.01)]
        plan = plan_audio_blocks(stream, chunks, 100, detector=None)
        assert plan.stored_count == 10

    def test_mixed_speech_silence(self, stream):
        chunks = [
            AudioChunk(start_sample=0, count=500, energy=0.6),
            AudioChunk(start_sample=500, count=500, energy=0.01),
        ]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        assert plan.stored_count == 5
        assert plan.silent_count == 5
        # Stored payloads carry the correct sample ranges.
        first = plan.payloads[0]
        assert first.start_sample == 0
        assert first.sample_count == 100
        assert plan.payloads[5] is None

    def test_partial_trailing_block(self, stream):
        chunks = [AudioChunk(start_sample=0, count=250, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        assert plan.block_count == 3
        assert plan.trailing_samples == 50
        assert plan.samples_in_block(2) == 50
        assert plan.samples_in_block(0) == 100

    def test_payload_bits_match_samples(self, stream):
        chunks = [AudioChunk(start_sample=0, count=300, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        for payload in plan.payloads:
            assert payload.bits == payload.sample_count * stream.sample_size

    def test_empty_chunks(self, stream):
        plan = plan_audio_blocks(stream, [], 100, SilenceDetector())
        assert plan.block_count == 0

    def test_rejects_bad_block_size(self, stream):
        with pytest.raises(ParameterError):
            plan_audio_blocks(stream, [], 0, SilenceDetector())

    def test_block_out_of_range(self, stream):
        chunks = [AudioChunk(start_sample=0, count=100, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        with pytest.raises(ParameterError):
            plan.samples_in_block(1)


class TestStatisticalBehaviour:
    def test_silence_grows_with_target_ratio(self, stream):
        """More silent input => more eliminated blocks (E10's shape)."""
        fractions = []
        for ratio in (0.1, 0.4, 0.7):
            rng = random.Random(99)
            chunks = generate_talk_spurts(stream, 120.0, ratio, rng)
            plan = plan_audio_blocks(stream, chunks, 2048, SilenceDetector())
            fractions.append(plan.silent_count / plan.block_count)
        assert fractions[0] < fractions[1] < fractions[2]


class TestSilenceStats:
    def test_stats_partition_all_bits(self, stream):
        chunks = [
            AudioChunk(start_sample=0, count=500, energy=0.6),
            AudioChunk(start_sample=500, count=500, energy=0.01),
        ]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        stats = plan.stats(stream.sample_size)
        total_bits = 1000 * stream.sample_size
        assert stats.stored_bits + stats.eliminated_bits == total_bits
        assert stats.silence_ratio == 0.5
        assert stats.space_saving == 0.5
        assert stats.total_blocks == 10
        assert stats.stored_blocks == 5

    def test_stats_no_silence(self, stream):
        chunks = [AudioChunk(start_sample=0, count=300, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        stats = plan.stats(stream.sample_size)
        assert stats.space_saving == 0.0
        assert stats.silence_ratio == 0.0

    def test_stats_empty_plan(self, stream):
        plan = plan_audio_blocks(stream, [], 100, SilenceDetector())
        stats = plan.stats(stream.sample_size)
        assert stats.silence_ratio == 0.0
        assert stats.space_saving == 0.0

    def test_rejects_bad_sample_size(self, stream):
        chunks = [AudioChunk(start_sample=0, count=100, energy=0.6)]
        plan = plan_audio_blocks(stream, chunks, 100, SilenceDetector())
        with pytest.raises(ParameterError):
            plan.stats(0)
