"""Unit tests for interest-based garbage collection."""

import pytest

from repro.errors import GarbageCollectionError
from repro.fs.gc import GarbageCollector, InterestRegistry


class TestInterestRegistry:
    def test_register_and_count(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        registry.register("R2", "S1")
        assert registry.interest_count("S1") == 2
        assert registry.is_referenced("S1")
        assert registry.holders("S1") == {"R1", "R2"}

    def test_register_idempotent(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        registry.register("R1", "S1")
        assert registry.interest_count("S1") == 1

    def test_drop(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        registry.drop("R1", "S1")
        assert not registry.is_referenced("S1")

    def test_drop_without_interest_raises(self):
        registry = InterestRegistry()
        with pytest.raises(GarbageCollectionError):
            registry.drop("R1", "S1")

    def test_drop_rope_releases_all(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        registry.register("R1", "S2")
        registry.register("R2", "S2")
        affected = registry.drop_rope("R1")
        assert affected == ["S1", "S2"]
        assert not registry.is_referenced("S1")
        assert registry.is_referenced("S2")  # R2 still holds it

    def test_sync_rope_adds_and_removes(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        registry.register("R1", "S2")
        registry.sync_rope("R1", {"S2", "S3"})
        assert not registry.is_referenced("S1")
        assert registry.is_referenced("S2")
        assert registry.is_referenced("S3")
        assert registry.strands_of("R1") == {"S2", "S3"}

    def test_sync_rope_from_scratch(self):
        registry = InterestRegistry()
        registry.sync_rope("R1", {"S1"})
        assert registry.is_referenced("S1")


class TestGarbageCollector:
    def test_collects_only_unreferenced(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        deleted = []
        collector = GarbageCollector(registry, deleted.append)
        victims = collector.collect(["S1", "S2", "S3"])
        assert victims == ["S2", "S3"]
        assert deleted == ["S2", "S3"]
        assert collector.collected_total == 2

    def test_nothing_to_collect(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        collector = GarbageCollector(registry, lambda s: None)
        assert collector.collect(["S1"]) == []

    def test_collection_after_interest_drop(self):
        registry = InterestRegistry()
        registry.register("R1", "S1")
        deleted = []
        collector = GarbageCollector(registry, deleted.append)
        assert collector.collect(["S1"]) == []
        registry.drop_rope("R1")
        assert collector.collect(["S1"]) == ["S1"]
