"""Unit tests for media blocks (homogeneous and heterogeneous)."""

import pytest

from repro.errors import ParameterError
from repro.fs.blocks import AudioPayload, BlockKind, MediaBlock


def audio_payload(samples=100):
    return AudioPayload(
        start_sample=0, sample_count=samples, average_energy=0.5,
        bits=samples * 8,
    )


class TestAudioPayload:
    def test_validation(self):
        with pytest.raises(ParameterError):
            AudioPayload(
                start_sample=-1, sample_count=1, average_energy=0.5, bits=8
            )
        with pytest.raises(ParameterError):
            AudioPayload(
                start_sample=0, sample_count=0, average_energy=0.5, bits=8
            )
        with pytest.raises(ParameterError):
            AudioPayload(
                start_sample=0, sample_count=1, average_energy=1.5, bits=8
            )


class TestHomogeneousBlocks:
    def test_video_block(self):
        block = MediaBlock(
            kind=BlockKind.VIDEO,
            video_tokens=("a", "b"),
            video_bits=200.0,
        )
        assert block.frame_count == 2
        assert block.sample_count == 0
        assert block.payload_bits == 200.0

    def test_audio_block(self):
        block = MediaBlock(kind=BlockKind.AUDIO, audio=audio_payload(64))
        assert block.sample_count == 64
        assert block.frame_count == 0
        assert block.payload_bits == 64 * 8

    def test_video_block_requires_frames(self):
        with pytest.raises(ParameterError):
            MediaBlock(kind=BlockKind.VIDEO, video_tokens=())

    def test_video_block_rejects_audio(self):
        with pytest.raises(ParameterError):
            MediaBlock(
                kind=BlockKind.VIDEO,
                video_tokens=("a",),
                video_bits=100.0,
                audio=audio_payload(),
            )

    def test_audio_block_requires_payload(self):
        with pytest.raises(ParameterError):
            MediaBlock(kind=BlockKind.AUDIO)


class TestHeterogeneousBlocks:
    def test_mixed_block_combines_bits(self):
        block = MediaBlock(
            kind=BlockKind.MIXED,
            video_tokens=("a", "b", "c"),
            video_bits=300.0,
            audio=audio_payload(50),
        )
        assert block.payload_bits == 300.0 + 400.0
        assert block.frame_count == 3
        assert block.sample_count == 50

    def test_mixed_requires_both(self):
        with pytest.raises(ParameterError):
            MediaBlock(
                kind=BlockKind.MIXED,
                video_tokens=("a",),
                video_bits=100.0,
            )
        with pytest.raises(ParameterError):
            MediaBlock(kind=BlockKind.MIXED, audio=audio_payload())


class TestOtherKinds:
    def test_text_block_allowed_empty(self):
        block = MediaBlock(kind=BlockKind.TEXT)
        assert block.payload_bits == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ParameterError):
            MediaBlock(kind=BlockKind.TEXT, video_bits=-1.0)
