"""Unit tests for the Multimedia Storage Manager."""

import random

import pytest

from repro.errors import ParameterError, UnknownStrandError
from repro.fs.blocks import BlockKind
from repro.media.audio import SilenceDetector, generate_talk_spurts
from repro.media.frames import frames_for_duration


@pytest.fixture
def frames(profile):
    return frames_for_duration(profile.video, 5.0, source="test")


@pytest.fixture
def chunks(profile, rng):
    return generate_talk_spurts(profile.audio, 5.0, 0.4, rng)


class TestPolicies:
    def test_policies_derived_for_all_media(self, msm):
        assert msm.policies.video.granularity >= 1
        assert msm.policies.audio.granularity >= 1
        assert msm.policies.mixed.granularity >= 1

    def test_policy_windows_valid(self, msm):
        for policy in (
            msm.policies.video, msm.policies.audio, msm.policies.mixed
        ):
            assert 0 <= policy.scattering_lower < policy.scattering_upper

    def test_block_fits_slot(self, msm, drive):
        assert msm.policies.video.block_bits <= drive.block_bits
        assert msm.policies.audio.block_bits <= drive.block_bits

    def test_policy_for_kind(self, msm):
        assert msm.policy_for(BlockKind.VIDEO) is msm.policies.video
        assert msm.policy_for(BlockKind.AUDIO) is msm.policies.audio
        assert msm.policy_for(BlockKind.MIXED) is msm.policies.mixed
        with pytest.raises(ParameterError):
            msm.policy_for(BlockKind.TEXT)


class TestVideoStorage:
    def test_store_and_verify(self, msm, frames):
        strand = msm.store_video_strand(frames)
        assert strand.is_finalized
        assert strand.kind is BlockKind.VIDEO
        assert strand.unit_count == len(frames)
        assert strand.duration == pytest.approx(5.0)
        strand.verify_against_index()

    def test_placement_respects_policy(self, msm, drive, frames):
        strand = msm.store_video_strand(frames)
        policy = msm.policies.video
        slots = strand.slots()
        for a, b in zip(slots, slots[1:]):
            gap = drive.access_gap(a, b)
            assert policy.scattering_lower - 1e-12 <= gap
            assert gap <= policy.scattering_upper + 1e-12

    def test_tokens_preserved_in_order(self, msm, frames):
        strand = msm.store_video_strand(frames)
        tokens = []
        for _, block in strand.blocks():
            tokens.extend(block.video_tokens)
        assert tokens == [f.token for f in frames]

    def test_empty_input_rejected(self, msm):
        with pytest.raises(ParameterError):
            msm.store_video_strand([])

    def test_ids_unique(self, msm, frames):
        a = msm.store_video_strand(frames)
        b = msm.store_video_strand(frames)
        assert a.strand_id != b.strand_id
        assert set(msm.strand_ids()) == {a.strand_id, b.strand_id}


class TestAudioStorage:
    def test_silence_elimination_saves_space(self, msm, profile, rng):
        chunks = generate_talk_spurts(profile.audio, 20.0, 0.5, rng)
        eliminated = msm.store_audio_strand(chunks, SilenceDetector())
        stored_all = msm.store_audio_strand(chunks, detector=None)
        assert eliminated.stored_block_count < stored_all.stored_block_count
        # Durations identical: silences still take playback time.
        assert eliminated.duration == pytest.approx(stored_all.duration)

    def test_duration_preserved(self, msm, chunks):
        strand = msm.store_audio_strand(chunks)
        assert strand.duration == pytest.approx(5.0, abs=0.3)

    def test_empty_rejected(self, msm):
        with pytest.raises(ParameterError):
            msm.store_audio_strand([])


class TestMixedStorage:
    def test_heterogeneous_blocks_carry_both(self, msm, frames, chunks):
        strand = msm.store_mixed_strand(frames, chunks)
        assert strand.kind is BlockKind.MIXED
        block = strand.block_at(0)
        assert block.frame_count >= 1
        assert block.sample_count >= 1

    def test_requires_both_media(self, msm, frames, chunks):
        with pytest.raises(ParameterError):
            msm.store_mixed_strand(frames, [])
        with pytest.raises(ParameterError):
            msm.store_mixed_strand([], chunks)


class TestDeletion:
    def test_delete_releases_space(self, msm, frames):
        before = msm.freemap.free_count
        strand = msm.store_video_strand(frames)
        assert msm.freemap.free_count < before
        msm.delete_strand(strand.strand_id)
        assert msm.freemap.free_count == before
        with pytest.raises(UnknownStrandError):
            msm.get_strand(strand.strand_id)

    def test_collect_garbage_respects_interests(self, msm, frames):
        kept = msm.store_video_strand(frames)
        doomed = msm.store_video_strand(frames)
        msm.interests.register("R1", kept.strand_id)
        victims = msm.collect_garbage()
        assert victims == [doomed.strand_id]
        assert msm.strand_ids() == [kept.strand_id]


class TestCopyPrimitives:
    def test_copy_blocks_near(self, msm, drive, frames):
        source = msm.store_video_strand(frames)
        anchor = source.slots()[0]
        copy = msm.copy_blocks_near(source, [0, 1], anchor)
        assert copy.block_count == 2
        assert copy.block_at(0).video_tokens == (
            source.block_at(0).video_tokens
        )
        # The copy's placement honours the source's bounds from the anchor.
        gap = drive.access_gap(anchor, copy.slots()[0])
        assert gap <= source.scattering_upper + 1e-12

    def test_create_copied_strand_exact_slots(self, msm, frames):
        source = msm.store_video_strand(frames)
        free = [s for s in range(msm.freemap.slots)
                if msm.freemap.is_free(s)][:2]
        copy = msm.create_copied_strand(source, [0, 1], free)
        assert copy.slots() == free
        assert not msm.freemap.is_free(free[0])

    def test_create_copied_strand_rolls_back_on_conflict(self, msm, frames):
        source = msm.store_video_strand(frames)
        taken = source.slots()[0]
        free = [s for s in range(msm.freemap.slots)
                if msm.freemap.is_free(s)][:1]
        before = msm.freemap.free_count
        with pytest.raises(Exception):
            msm.create_copied_strand(source, [0, 1], [free[0], taken])
        assert msm.freemap.free_count == before

    def test_copy_rejects_silence_blocks(self, msm, profile, rng):
        chunks = generate_talk_spurts(profile.audio, 20.0, 0.6, rng)
        strand = msm.store_audio_strand(chunks)
        silent = next(
            n for n in range(strand.block_count)
            if strand.slot_of(n) is None
        )
        free = [s for s in range(msm.freemap.slots)
                if msm.freemap.is_free(s)][:1]
        with pytest.raises(ParameterError):
            msm.create_copied_strand(strand, [silent], free)

    def test_copy_mismatched_lengths(self, msm, frames):
        source = msm.store_video_strand(frames)
        with pytest.raises(ParameterError):
            msm.create_copied_strand(source, [0], [])


class TestOccupancy:
    def test_occupancy_tracks_usage(self, msm, frames):
        assert msm.occupancy == 0.0
        msm.store_video_strand(frames)
        assert msm.occupancy > 0.0
