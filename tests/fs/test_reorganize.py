"""Unit tests for §6.2 storage reorganization."""

import pytest

from repro.disk import ScatterBounds
from repro.errors import ParameterError
from repro.fs.reorganize import Reorganizer
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer


@pytest.fixture
def clip(profile):
    return frames_for_duration(profile.video, 8.0, source="clip")


def fragment(msm, clip, target=0.7):
    """Fill to *target* occupancy with strands, then delete every other."""
    strands = []
    while msm.occupancy < target:
        strands.append(msm.store_video_strand(clip))
    for victim in strands[::2]:
        msm.delete_strand(victim.strand_id)
    return [s for i, s in enumerate(strands) if i % 2 == 1]


def tight_bounds(drive):
    rotation = drive.rotation.average_latency
    return ScatterBounds(0.0, rotation + drive.seek_model.seek_time(3) + 1e-6)


class TestFeasibilityProbe:
    def test_trial_does_not_consume_space(self, msm, clip):
        msm.store_video_strand(clip)
        free_before = msm.freemap.free_count
        reorganizer = Reorganizer(msm)
        assert reorganizer.placement_feasible(50)
        assert msm.freemap.free_count == free_before

    def test_infeasible_on_fragmented_disk(self, msm, drive, clip):
        fragment(msm, clip)
        reorganizer = Reorganizer(msm)
        assert not reorganizer.placement_feasible(160, tight_bounds(drive))


class TestMakeRoom:
    def test_noop_when_already_feasible(self, msm, clip):
        msm.store_video_strand(clip)
        report = Reorganizer(msm).make_room(20)
        assert report.success
        assert report.strands_migrated == 0
        assert not report.moved_anything

    def test_reorganization_restores_feasibility(self, msm, drive, clip):
        survivors = fragment(msm, clip)
        reorganizer = Reorganizer(msm)
        bounds = tight_bounds(drive)
        assert not reorganizer.placement_feasible(160, bounds)
        report = reorganizer.make_room(160, bounds)
        assert report.success
        assert report.blocks_moved > 0
        # And the placement genuinely works now.
        assert reorganizer.placement_feasible(160, bounds)

    def test_migrated_strands_stay_consistent(self, msm, drive, clip):
        survivors = fragment(msm, clip)
        reorganizer = Reorganizer(msm)
        reorganizer.make_room(160, tight_bounds(drive))
        for strand in survivors:
            strand.verify_against_index()
            # Gaps still honour the strand's own policy bounds.
            slots = strand.slots()
            for a, b in zip(slots, slots[1:]):
                gap = drive.access_gap(a, b)
                assert strand.scattering_lower - 1e-12 <= gap
                assert gap <= strand.scattering_upper + 1e-12

    def test_migration_preserves_playback_content(
        self, msm, drive, clip, profile
    ):
        """Reorganization is invisible to readers: tokens unchanged."""
        mrs = MultimediaRopeServer(msm)
        survivors = fragment(msm, clip)
        strand = survivors[0]
        rope_id = mrs.adopt_strands("u", video_strand_id=strand.strand_id)
        before = mrs.playback_plan(
            mrs.play("u", rope_id, media=Media.VIDEO)
        ).tokens()
        Reorganizer(msm).make_room(160, tight_bounds(drive))
        after = mrs.playback_plan(
            mrs.play("u", rope_id, media=Media.VIDEO)
        ).tokens()
        assert before == after

    def test_free_space_conserved(self, msm, drive, clip):
        fragment(msm, clip)
        free_before = msm.freemap.free_count
        Reorganizer(msm).make_room(160, tight_bounds(drive))
        assert msm.freemap.free_count == free_before


class TestRelocatePrimitive:
    def test_relocate_updates_index(self, msm, clip):
        strand = msm.store_video_strand(clip)
        old_slot = strand.slot_of(0)
        new_slot = msm.freemap.free_slots()[-1]
        msm.freemap.allocate(new_slot)
        msm.freemap.release(old_slot)
        strand.relocate_block(0, new_slot)
        assert strand.slot_of(0) == new_slot
        entry = strand.index.lookup(0)
        assert entry.sector == new_slot * strand.sectors_per_block
        strand.verify_against_index()

    def test_relocate_silence_rejected(self, msm, profile, rng):
        from repro.media.audio import generate_talk_spurts
        chunks = generate_talk_spurts(profile.audio, 20.0, 0.6, rng)
        strand = msm.store_audio_strand(chunks)
        silent = next(
            n for n in range(strand.block_count)
            if strand.slot_of(n) is None
        )
        with pytest.raises(ParameterError):
            strand.relocate_block(silent, 5)
