"""Persistence round-trips for heterogeneous and audio strands."""

import pytest

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.fs import MultimediaStorageManager, dump_image, load_image
from repro.fs.blocks import BlockKind
from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import MultimediaRopeServer


def fresh_pair():
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(), profile.video, profile.audio,
        profile.video_device, profile.audio_device,
    )
    return msm, MultimediaRopeServer(msm)


class TestMixedStrandPersistence:
    def test_heterogeneous_blocks_round_trip(self, profile, rng):
        msm, mrs = fresh_pair()
        frames = frames_for_duration(profile.video, 4.0, source="het")
        chunks = generate_talk_spurts(profile.audio, 4.0, 0.2, rng)
        strand = msm.store_mixed_strand(frames, chunks)
        image = dump_image(msm)
        msm2, _ = fresh_pair()
        load_image(image, msm2)
        restored = msm2.get_strand(strand.strand_id)
        assert restored.kind is BlockKind.MIXED
        block = restored.block_at(0)
        assert block.frame_count >= 1
        assert block.sample_count >= 1
        assert block.audio.average_energy == pytest.approx(
            strand.block_at(0).audio.average_energy
        )

    def test_silence_holders_round_trip(self, profile, rng):
        msm, mrs = fresh_pair()
        chunks = generate_talk_spurts(profile.audio, 20.0, 0.6, rng)
        strand = msm.store_audio_strand(chunks)
        silent_blocks = [
            n for n in range(strand.block_count)
            if strand.slot_of(n) is None
        ]
        assert silent_blocks
        image = dump_image(msm)
        msm2, _ = fresh_pair()
        load_image(image, msm2)
        restored = msm2.get_strand(strand.strand_id)
        for n in silent_blocks:
            assert restored.slot_of(n) is None
            assert restored.index.lookup(n) is None
            assert restored.units_of(n) == strand.units_of(n)
        assert restored.duration == pytest.approx(strand.duration)

    def test_scattering_bounds_round_trip(self, profile):
        msm, mrs = fresh_pair()
        frames = frames_for_duration(profile.video, 3.0, source="sc")
        strand = msm.store_video_strand(frames)
        image = dump_image(msm)
        msm2, _ = fresh_pair()
        load_image(image, msm2)
        restored = msm2.get_strand(strand.strand_id)
        assert restored.scattering_lower == strand.scattering_lower
        assert restored.scattering_upper == strand.scattering_upper
