"""Unit tests for the 3-level strand index (Figs. 5-6)."""

import pytest

from repro.errors import IndexCorruptionError, ParameterError
from repro.fs.index import (
    PRIMARY_ENTRY_BITS,
    SECONDARY_ENTRY_BITS,
    PrimaryEntry,
    StrandIndex,
    fanout_for,
)


def make_index(primary_fanout=4, secondary_fanout=3):
    return StrandIndex(
        frame_rate=30.0,
        primary_fanout=primary_fanout,
        secondary_fanout=secondary_fanout,
    )


class TestFanout:
    def test_entry_sizes_match_fig6(self):
        # Primary: sector + sectorCount; secondary: 4 fields.
        assert PRIMARY_ENTRY_BITS == 64
        assert SECONDARY_ENTRY_BITS == 128

    def test_fanout_computation(self):
        assert fanout_for(32 * 1024 * 8, PRIMARY_ENTRY_BITS) == 4096
        assert fanout_for(32 * 1024 * 8, SECONDARY_ENTRY_BITS) == 2048

    def test_too_small_block_rejected(self):
        with pytest.raises(ParameterError):
            fanout_for(32, 64)


class TestAppendLookup:
    def test_roundtrip(self):
        index = make_index()
        entries = [PrimaryEntry(sector=i * 64, sector_count=64) for i in range(10)]
        for i, entry in enumerate(entries):
            assert index.append(entry, units=4) == i
        for i, entry in enumerate(entries):
            assert index.lookup(i) == entry

    def test_null_silence_entries(self):
        index = make_index()
        index.append(PrimaryEntry(sector=0, sector_count=64), units=4)
        index.append(None, units=4)  # silence delay holder
        assert index.lookup(0) is not None
        assert index.lookup(1) is None

    def test_block_count_and_units(self):
        index = make_index()
        for _ in range(7):
            index.append(PrimaryEntry(sector=0, sector_count=1), units=4)
        assert index.block_count == 7
        assert index.header.frame_count == 28

    def test_lookup_out_of_range(self):
        index = make_index()
        index.append(PrimaryEntry(sector=0, sector_count=1))
        with pytest.raises(ParameterError):
            index.lookup(1)
        with pytest.raises(ParameterError):
            index.lookup(-1)

    def test_iteration_order(self):
        index = make_index(primary_fanout=2)
        entries = [
            PrimaryEntry(sector=i, sector_count=1) if i % 2 == 0 else None
            for i in range(5)
        ]
        for entry in entries:
            index.append(entry)
        assert list(index) == entries


class TestMultiLevelGrowth:
    def test_primary_blocks_fill_then_split(self):
        index = make_index(primary_fanout=4)
        for i in range(9):
            index.append(PrimaryEntry(sector=i, sector_count=1))
        assert len(index.primaries) == 3
        assert len(index.primaries[0].entries) == 4
        assert len(index.primaries[2].entries) == 1

    def test_secondary_blocks_grow(self):
        # fanout 2x2: 4 primaries per secondary pair.
        index = make_index(primary_fanout=2, secondary_fanout=2)
        for i in range(10):  # 5 primaries -> 3 secondaries
            index.append(PrimaryEntry(sector=i, sector_count=1))
        assert len(index.primaries) == 5
        assert len(index.secondaries) == 3
        assert index.header.secondary_count == 3

    def test_large_strand_constant_time_lookup(self):
        index = make_index(primary_fanout=8, secondary_fanout=8)
        for i in range(1000):
            index.append(PrimaryEntry(sector=i, sector_count=1))
        assert index.lookup(999).sector == 999
        assert index.lookup(123).sector == 123


class TestSlotAssignment:
    def test_assign_and_list(self):
        index = make_index(primary_fanout=2, secondary_fanout=2)
        for i in range(5):
            index.append(PrimaryEntry(sector=i, sector_count=1))
        count = index.index_block_count()
        assert count == 1 + len(index.secondaries) + len(index.primaries)
        slots = list(range(100, 100 + count))
        index.assign_slots(slots)
        assert index.header.slot == 100
        assert sorted(index.assigned_slots()) == slots
        # Secondary entries now point at primary slots.
        for secondary in index.secondaries:
            for entry in secondary.entries:
                assert entry.sector >= 100

    def test_wrong_slot_count_rejected(self):
        index = make_index()
        index.append(PrimaryEntry(sector=0, sector_count=1))
        with pytest.raises(ParameterError):
            index.assign_slots([1, 2, 3, 4, 5, 6, 7])


class TestVerification:
    def test_fresh_index_verifies(self):
        index = make_index(primary_fanout=3, secondary_fanout=2)
        for i in range(11):
            index.append(PrimaryEntry(sector=i, sector_count=1))
        index.verify()

    def test_detects_header_mismatch(self):
        index = make_index()
        index.append(PrimaryEntry(sector=0, sector_count=1))
        index.header.secondary_slots.append(None)  # corrupt
        with pytest.raises(IndexCorruptionError):
            index.verify()

    def test_detects_overfilled_primary(self):
        index = make_index(primary_fanout=2)
        index.append(PrimaryEntry(sector=0, sector_count=1))
        index.primaries[0].entries.append(None)
        index.primaries[0].entries.append(None)
        with pytest.raises(IndexCorruptionError):
            index.primaries[0].append(None)

    def test_rejects_bad_construction(self):
        with pytest.raises(ParameterError):
            StrandIndex(frame_rate=0, primary_fanout=4, secondary_fanout=4)
        with pytest.raises(ParameterError):
            StrandIndex(frame_rate=30, primary_fanout=0, secondary_fanout=4)
