"""Unit tests for the immutable strand abstraction."""

import pytest

from repro.errors import ParameterError, StrandImmutableError
from repro.fs.blocks import AudioPayload, BlockKind, MediaBlock
from repro.fs.index import StrandIndex
from repro.fs.strand import Strand


def make_strand(kind=BlockKind.VIDEO, rate=30.0, granularity=4):
    index = StrandIndex(
        frame_rate=rate, primary_fanout=8, secondary_fanout=8
    )
    return Strand(
        strand_id="S0001",
        kind=kind,
        unit_rate=rate,
        granularity=granularity,
        sectors_per_block=64,
        index=index,
        scattering_lower=0.005,
        scattering_upper=0.050,
    )


def video_block(n_frames=4, start=0):
    return MediaBlock(
        kind=BlockKind.VIDEO,
        video_tokens=tuple(f"f{start + i}" for i in range(n_frames)),
        video_bits=n_frames * 1000.0,
    )


def audio_block(samples=100, start=0):
    return MediaBlock(
        kind=BlockKind.AUDIO,
        audio=AudioPayload(
            start_sample=start, sample_count=samples,
            average_energy=0.5, bits=samples * 8,
        ),
    )


class TestRecording:
    def test_append_blocks(self):
        strand = make_strand()
        assert strand.append_block(video_block(), slot=10) == 0
        assert strand.append_block(video_block(start=4), slot=20) == 1
        assert strand.block_count == 2
        assert strand.unit_count == 8
        assert strand.duration == pytest.approx(8 / 30)
        assert strand.stored_bits == pytest.approx(8000.0)

    def test_slots_and_contents(self):
        strand = make_strand()
        strand.append_block(video_block(), slot=10)
        assert strand.slot_of(0) == 10
        assert strand.block_at(0).video_tokens[0] == "f0"
        assert strand.slots() == [10]

    def test_silence_holders(self):
        strand = make_strand(kind=BlockKind.AUDIO, rate=8000.0,
                             granularity=100)
        strand.append_block(audio_block(), slot=5)
        strand.append_silence(units=100)
        strand.append_block(audio_block(start=200), slot=9)
        assert strand.block_count == 3
        assert strand.stored_block_count == 2
        assert strand.slot_of(1) is None
        assert strand.block_at(1) is None
        assert strand.unit_count == 300
        assert strand.units_of(1) == 100
        assert strand.unit_offset_of(2) == 200

    def test_video_strands_reject_silence(self):
        strand = make_strand()
        with pytest.raises(ParameterError):
            strand.append_silence(4)

    def test_block_units_tracked(self):
        strand = make_strand()
        strand.append_block(video_block(4), slot=1)
        strand.append_block(video_block(2, start=4), slot=2)  # partial tail
        assert strand.units_of(0) == 4
        assert strand.units_of(1) == 2
        assert strand.unit_offset_of(1) == 4


class TestImmutability:
    def test_finalize_freezes(self):
        strand = make_strand()
        strand.append_block(video_block(), slot=1)
        strand.finalize()
        assert strand.is_finalized
        with pytest.raises(StrandImmutableError):
            strand.append_block(video_block(), slot=2)

    def test_finalize_returns_self(self):
        strand = make_strand()
        strand.append_block(video_block(), slot=1)
        assert strand.finalize() is strand


class TestConsistency:
    def test_verify_against_index(self):
        strand = make_strand(kind=BlockKind.AUDIO, rate=8000.0,
                             granularity=100)
        strand.append_block(audio_block(), slot=3)
        strand.append_silence(units=100)
        strand.append_block(audio_block(start=200), slot=7)
        strand.verify_against_index()

    def test_index_entries_carry_sectors(self):
        strand = make_strand()
        strand.append_block(video_block(), slot=3)
        entry = strand.index.lookup(0)
        assert entry.sector == 3 * 64
        assert entry.sector_count == 64

    def test_out_of_range_access(self):
        strand = make_strand()
        strand.append_block(video_block(), slot=1)
        with pytest.raises(ParameterError):
            strand.slot_of(1)
        with pytest.raises(ParameterError):
            strand.units_of(5)

    def test_blocks_iteration(self):
        strand = make_strand(kind=BlockKind.AUDIO, rate=8000.0,
                             granularity=100)
        strand.append_block(audio_block(), slot=3)
        strand.append_silence(units=50)
        pairs = list(strand.blocks())
        assert len(pairs) == 2
        assert pairs[0][1] is not None
        assert pairs[1][1] is None


class TestValidation:
    def test_rejects_non_media_kind(self):
        index = StrandIndex(
            frame_rate=30.0, primary_fanout=8, secondary_fanout=8
        )
        with pytest.raises(ParameterError):
            Strand(
                strand_id="S1", kind=BlockKind.TEXT, unit_rate=30.0,
                granularity=4, sectors_per_block=64, index=index,
            )

    def test_block_playback_duration(self):
        strand = make_strand(granularity=4, rate=30.0)
        assert strand.block_playback_duration == pytest.approx(4 / 30)
