"""Unit tests for striped storage on multi-head arrays."""

import pytest

from repro.config import TESTBED_1991
from repro.core import continuity
from repro.core.continuity import Architecture
from repro.core.symbols import video_block_model
from repro.disk import build_array
from repro.errors import ParameterError, UnknownStrandError
from repro.fs.striped import StripedStorageManager
from repro.media.frames import frames_for_duration
from repro.service import simulate_concurrent


@pytest.fixture
def array():
    return build_array(heads=4)


@pytest.fixture
def striped(array, profile):
    return StripedStorageManager(
        array, profile.video, profile.video_device, granularity=2
    )


@pytest.fixture
def frames(profile):
    return frames_for_duration(profile.video, 8.0, source="striped")


class TestStorage:
    def test_round_robin_striping(self, striped, frames):
        strand = striped.store_video_strand(frames)
        members = [a.drive_index for a in strand.addresses]
        assert members[:8] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_per_member_scattering_bound(self, striped, array, frames):
        strand = striped.store_video_strand(frames)
        per_member = {}
        for address in strand.addresses:
            per_member.setdefault(address.drive_index, []).append(
                address.slot
            )
        for member_index, slots in per_member.items():
            member = array.member(member_index)
            for a, b in zip(slots, slots[1:]):
                gap = member.access_gap(a, b)
                assert gap <= striped.scattering_upper + 1e-12

    def test_concurrent_bound_wider_than_pipelined(self, striped, profile):
        block = video_block_model(profile.video, 2)
        single = build_array(heads=1)
        pipelined = continuity.max_scattering(
            Architecture.PIPELINED, block,
            single.member(0).parameters(), profile.video_device,
        )
        assert striped.scattering_upper > pipelined

    def test_tokens_preserved(self, striped, frames):
        strand = striped.store_video_strand(frames)
        flattened = [t for block in strand.tokens for t in block]
        assert flattened == [f.token for f in frames]

    def test_delete_releases_all_members(self, striped, frames):
        strand = striped.store_video_strand(frames)
        assert striped.occupancy() > 0
        striped.delete_strand(strand.strand_id)
        assert striped.occupancy() == 0.0
        with pytest.raises(UnknownStrandError):
            striped.get_strand(strand.strand_id)

    def test_block_too_big_rejected(self, array, profile):
        with pytest.raises(ParameterError):
            StripedStorageManager(
                array, profile.video, profile.video_device, granularity=64
            )

    def test_empty_strand_rejected(self, striped):
        with pytest.raises(ParameterError):
            striped.store_video_strand([])


class TestConcurrentPlayback:
    def test_striped_strand_plays_continuously(
        self, striped, array, frames
    ):
        strand = striped.store_video_strand(frames)
        fetches = striped.playback_fetches(strand)
        metrics, _ = simulate_concurrent(fetches, array)
        assert metrics.continuous
        assert metrics.blocks_delivered == strand.block_count

    def test_token_round_trip_through_fetches(self, striped, frames):
        strand = striped.store_video_strand(frames)
        fetches = striped.playback_fetches(strand)
        tokens = [t for fetch in fetches for t in fetch.tokens]
        assert tokens == [f.token for f in frames]

    def test_durations_cover_clip(self, striped, frames):
        strand = striped.store_video_strand(frames)
        fetches = striped.playback_fetches(strand)
        assert sum(f.duration for f in fetches) == pytest.approx(8.0)

    def test_striping_survives_per_member_infeasibility(self, profile):
        """A stream too fast for one member plays on the array.

        45 fps at granularity 1 with forced wide scattering would glitch
        on a single drive (see E4); striped over 4 heads the per-member
        budget is (p−1) periods and playback is clean.
        """
        from repro.core.symbols import VideoStream

        fast = VideoStream(frame_rate=45.0, frame_size=profile.video.frame_size)
        array = build_array(heads=4)
        manager = StripedStorageManager(
            array, fast, profile.video_device, granularity=1
        )
        frames = frames_for_duration(fast, 4.0, source="fast")
        strand = manager.store_video_strand(frames)
        metrics, _ = simulate_concurrent(
            manager.playback_fetches(strand), array
        )
        assert metrics.continuous
