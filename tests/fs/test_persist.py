"""Unit/round-trip tests for file-system image persistence."""

import json

import pytest

from repro.config import TESTBED_1991
from repro.disk import build_drive
from repro.errors import ParameterError
from repro.fs import MultimediaStorageManager
from repro.fs.persist import dump_image, load_file, load_image, save_file
from repro.media.audio import generate_talk_spurts
from repro.media.frames import frames_for_duration
from repro.rope import Media, MultimediaRopeServer


def fresh_pair():
    profile = TESTBED_1991
    msm = MultimediaStorageManager(
        build_drive(), profile.video, profile.audio,
        profile.video_device, profile.audio_device,
    )
    return msm, MultimediaRopeServer(msm)


@pytest.fixture
def populated(profile, rng):
    msm, mrs = fresh_pair()
    frames = frames_for_duration(profile.video, 8.0, source="cam")
    chunks = generate_talk_spurts(profile.audio, 8.0, 0.4, rng)
    q1, rope_a = mrs.record(
        "alice", frames=frames, chunks=chunks, play_access=("bob",)
    )
    mrs.stop(q1)
    q2, rope_b = mrs.record("alice", frames=frames[:120])
    mrs.stop(q2)
    mrs.insert("alice", rope_a, 2.0, Media.VIDEO, rope_b, 0.0, 4.0)
    return msm, mrs, rope_a, frames


class TestRoundTrip:
    def test_image_restores_everything(self, populated):
        msm, mrs, rope_a, frames = populated
        image = dump_image(msm, mrs)
        msm2, mrs2 = fresh_pair()
        load_image(image, msm2, mrs2)

        assert msm2.strand_ids() == msm.strand_ids()
        assert msm2.freemap.used_count == msm.freemap.used_count
        assert mrs2.rope_ids() == mrs.rope_ids()

        # Every strand round-trips placement, silence pattern, and index.
        for strand_id in msm.strand_ids():
            original = msm.get_strand(strand_id)
            restored = msm2.get_strand(strand_id)
            assert restored.block_count == original.block_count
            assert restored.slots() == original.slots()
            assert restored.unit_count == original.unit_count
            restored.verify_against_index()

        # Playback over the restored image is byte-identical.
        play_original = mrs.playback_plan(
            mrs.play("alice", rope_a, media=Media.VIDEO)
        ).tokens()
        play_restored = mrs2.playback_plan(
            mrs2.play("alice", rope_a, media=Media.VIDEO)
        ).tokens()
        assert play_restored == play_original

    def test_access_rights_survive(self, populated):
        msm, mrs, rope_a, _ = populated
        msm2, mrs2 = fresh_pair()
        load_image(dump_image(msm, mrs), msm2, mrs2)
        rope = mrs2.get_rope(rope_a)
        rope.check_play("bob")

    def test_image_is_json_serializable(self, populated):
        msm, mrs, _, _ = populated
        text = json.dumps(dump_image(msm, mrs))
        assert "strands" in text

    def test_file_round_trip(self, populated, tmp_path):
        msm, mrs, rope_a, _ = populated
        path = tmp_path / "image.json"
        save_file(str(path), msm, mrs)
        msm2, mrs2 = fresh_pair()
        load_file(str(path), msm2, mrs2)
        assert mrs2.get_rope(rope_a).duration == pytest.approx(
            mrs.get_rope(rope_a).duration
        )

    def test_new_ids_do_not_collide_after_load(self, populated, profile):
        msm, mrs, _, frames = populated
        msm2, mrs2 = fresh_pair()
        load_image(dump_image(msm, mrs), msm2, mrs2)
        new_strand = msm2.store_video_strand(frames[:60])
        assert new_strand.strand_id not in set(msm.strand_ids())
        q, new_rope = mrs2.record("alice", frames=frames[:60])
        mrs2.stop(q)
        assert new_rope not in set(mrs.rope_ids())


class TestValidation:
    def test_rejects_wrong_version(self):
        msm, mrs = fresh_pair()
        with pytest.raises(ParameterError):
            load_image({"version": 99, "slots": 1, "strands": []}, msm)

    def test_rejects_non_empty_target(self, populated):
        msm, mrs, _, frames = populated
        image = dump_image(msm)
        with pytest.raises(ParameterError):
            load_image(image, msm)  # msm already holds the strands

    def test_rejects_too_small_drive(self, populated):
        msm, mrs, _, _ = populated
        image = dump_image(msm)
        image["slots"] = 10 ** 9
        msm2, _ = fresh_pair()
        with pytest.raises(ParameterError):
            load_image(image, msm2)
